"""Partitioned columnar warehouse tables over the simulated DFS.

Each :class:`WarehouseTable` is partitioned by the value of one column
(typically the calendar day of a timestamp); every partition holds one or more
columnar blocks persisted as DFS files.

Two access paths are offered:

* **Row-at-a-time** — :meth:`WarehouseTable.scan` materialises row dicts and
  applies an arbitrary row predicate.  This is the compatibility / streaming
  path for one-shot full-row consumers (e.g. model training) and deliberately
  bypasses the block cache so such streams don't churn it; the columnar reads
  below — including :meth:`WarehouseTable.read_column` — are the repeated
  analytics access pattern and are served through the cache.
* **Vectorised** — :meth:`WarehouseTable.scan_columns`,
  :meth:`WarehouseTable.scan_filtered` and :meth:`WarehouseTable.aggregate`
  evaluate conjunctive range filters and per-column predicates as *selection
  vectors* over the raw column arrays of each block.  Row dicts are only built
  for surviving rows, and only when the caller asks for rows (late
  materialisation).  Multi-column zone (min/max) statistics prune whole blocks
  before any DFS read; pure ``count``/``min``/``max`` aggregates are answered
  from block statistics without reading a single block; repeated reads are
  served from a per-table LRU cache of decoded blocks that is invalidated on
  :meth:`WarehouseTable.drop_partition` / :meth:`Warehouse.drop_table`.
"""

from __future__ import annotations

import copy
import re
from collections import Counter, OrderedDict
from dataclasses import dataclass
from datetime import date, datetime
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from ...compute.shuffle import canonical_key
from ...errors import WarehouseError
from .blocks import ColumnarBlock
from .dfs import DistributedFileSystem

#: ``(column, low, high)`` — inclusive bounds, ``None`` meaning unbounded.
RangeFilter = tuple[str, Any, Any]


def _unhashable_group(group_by: str | None, exc: TypeError) -> WarehouseError:
    return WarehouseError(
        f"group-by column {group_by!r} has unhashable values "
        f"(pass group_key to map them): {exc}"
    )


def _own_value(value: Any) -> Any:
    """Copy a mutable cell value so callers own it (cached blocks stay pristine).

    A deep copy, so nested mutables (lists of dicts, ...) are owned too —
    the same contract as the decode-fresh :meth:`WarehouseTable.scan` path.
    """
    return copy.deepcopy(value) if isinstance(value, (list, dict, set)) else value


def day_partitioner(column: str) -> Callable[[dict[str, Any]], str]:
    """Partition rows by the calendar day of a timestamp column."""

    def partition(row: dict[str, Any]) -> str:
        value = row.get(column)
        if isinstance(value, datetime):
            return value.date().isoformat()
        if isinstance(value, date):
            return value.isoformat()
        if isinstance(value, str) and len(value) >= 10:
            return value[:10]
        return "unknown"

    return partition


#: Strings shaped like a type tag ("int:1", "https://...") must themselves be
#: tagged, or they would collide with tagged non-string keys.
_TAG_SHAPED = re.compile(r"[A-Za-z_]\w*:")


def value_partitioner(column: str) -> Callable[[dict[str, Any]], str]:
    """Partition rows by the value of a column.

    Keys are canonicalised with the same scheme as :mod:`repro.compute.shuffle`
    so equal-but-differently-typed values (``1``/``1.0``/``True``) share one
    partition, while *unequal* values of different types (``1`` vs ``"1"``)
    never collide: non-strings are tagged with their canonical type name, and
    strings keep their natural partition name unless they are shaped like a
    tag themselves (then they get an explicit ``str:`` tag).
    """

    def partition(row: dict[str, Any]) -> str:
        value = row.get(column)
        if value is None:
            return "null"
        if isinstance(value, str):
            # Tag-shaped strings and the literal "null" would collide with
            # tagged non-string keys / the None partition.
            if _TAG_SHAPED.match(value) or value == "null":
                return f"str:{value}"
            return value
        value = canonical_key(value)
        return f"{type(value).__name__}:{value}"

    return partition


@dataclass
class _BlockRef:
    path: str
    n_rows: int
    stats: dict[str, dict[str, Any]]


class _BlockCache:
    """A small LRU cache of decoded :class:`ColumnarBlock` objects by DFS path."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[str, ColumnarBlock] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, path: str) -> ColumnarBlock | None:
        block = self._entries.get(path)
        if block is None:
            self.misses += 1
            return None
        self._entries.move_to_end(path)
        self.hits += 1
        return block

    def put(self, path: str, block: ColumnarBlock) -> None:
        if self.capacity < 1:
            return
        self._entries[path] = block
        self._entries.move_to_end(path)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, path: str) -> None:
        self._entries.pop(path, None)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Aggregate functions answerable from block statistics alone.
_STATS_ONLY_FUNCTIONS = {"count", "min", "max"}
_AGGREGATE_FUNCTIONS = {"count", "min", "max", "sum", "avg"}


class WarehouseTable:
    """One partitioned columnar table."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        dfs: DistributedFileSystem,
        partitioner: Callable[[dict[str, Any]], str],
        block_rows: int = 4096,
        cache_blocks: int = 64,
    ) -> None:
        if not columns:
            raise WarehouseError(f"table {name!r} needs at least one column")
        if block_rows < 1:
            raise WarehouseError("block_rows must be >= 1")
        self.name = name
        self.columns = list(columns)
        self.dfs = dfs
        self.partitioner = partitioner
        self.block_rows = block_rows
        self._partitions: dict[str, list[_BlockRef]] = {}
        self._block_counter = 0
        self._cache = _BlockCache(cache_blocks)

    # ---------------------------------------------------------------- writes

    def append(self, rows: Iterable[dict[str, Any]]) -> int:
        """Append rows, grouping them into per-partition blocks; returns rows written."""
        grouped: dict[str, list[dict[str, Any]]] = {}
        count = 0
        for row in rows:
            partition = self.partitioner(row)
            grouped.setdefault(partition, []).append(row)
            count += 1
        for partition, partition_rows in grouped.items():
            for start in range(0, len(partition_rows), self.block_rows):
                chunk = partition_rows[start:start + self.block_rows]
                self._write_block(partition, chunk)
        return count

    def _write_block(self, partition: str, rows: list[dict[str, Any]]) -> None:
        block = ColumnarBlock.from_rows(rows, self.columns)
        self._block_counter += 1
        path = f"/warehouse/{self.name}/{partition}/block-{self._block_counter:06d}.json"
        self.dfs.write_file(path, block.to_bytes())
        self._partitions.setdefault(partition, []).append(
            _BlockRef(path=path, n_rows=block.n_rows, stats=block.stats)
        )

    def drop_partition(self, partition: str) -> int:
        """Delete every block of ``partition``; returns the number of rows removed."""
        refs = self._partitions.pop(partition, [])
        removed = 0
        for ref in refs:
            self._cache.invalidate(ref.path)
            self.dfs.delete_file(ref.path)
            removed += ref.n_rows
        return removed

    # ----------------------------------------------------------------- reads

    def partitions(self) -> list[str]:
        """All partition keys, sorted."""
        return sorted(self._partitions)

    def row_count(self, partition: str | None = None) -> int:
        """Total rows (optionally of a single partition)."""
        if partition is not None:
            return sum(ref.n_rows for ref in self._partitions.get(partition, []))
        return sum(ref.n_rows for refs in self._partitions.values() for ref in refs)

    def scan(
        self,
        columns: Sequence[str] | None = None,
        partitions: Sequence[str] | None = None,
        predicate: Callable[[dict[str, Any]], bool] | None = None,
        zone_filter: tuple[str, Any, Any] | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Row-at-a-time scan (streaming; bypasses the block cache).

        Parameters
        ----------
        columns:
            Columns to materialise (all by default).
        partitions:
            Restrict the scan to these partition keys (partition pruning).
        predicate:
            Row-level filter applied after reading a block.
        zone_filter:
            ``(column, low, high)`` bounds used to skip blocks whose min/max
            statistics prove they contain no matching rows.
        """
        zone_filters = [zone_filter] if zone_filter is not None else None
        for _partition, ref in self._iter_refs(partitions, zone_filters):
            block = ColumnarBlock.from_bytes(self.dfs.read_file(ref.path))
            for row in block.to_rows(columns):
                if predicate is None or predicate(row):
                    yield row

    def scan_columns(
        self,
        columns: Sequence[str],
        partitions: Sequence[str] | None = None,
        range_filters: Sequence[RangeFilter] | None = None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None = None,
    ) -> Iterator[dict[str, list[Any]]]:
        """Vectorised scan: yield per-block column arrays for surviving rows.

        Filters are evaluated column-at-a-time as a selection vector over the
        block's raw arrays; only then are the projected columns compacted, so
        non-surviving rows are never materialised.  ``range_filters`` are
        conjunctive inclusive ``(column, low, high)`` bounds (``None`` bound =
        unbounded; ``None`` values never match a bounded filter) that also
        prune whole blocks via their zone statistics.  ``column_predicates``
        maps column names to per-value predicates.  Filter columns need not be
        projected.  Returned arrays are fresh lists owned by the caller, but
        the cell values themselves are shared with the block cache — treat
        nested mutable values (e.g. list-valued columns) as read-only, or use
        :meth:`scan_filtered`, which copies them.
        """
        self._check_columns(columns)
        self._check_columns(f[0] for f in range_filters or ())
        self._check_columns(column_predicates or ())
        for _partition, ref in self._iter_refs(partitions, range_filters):
            block = self._load_block(ref)
            selection = _selection_vector(block, range_filters, column_predicates)
            if selection is None:
                yield {name: list(block.columns[name]) for name in columns}
            elif selection:
                yield {
                    name: [block.columns[name][i] for i in selection]
                    for name in columns
                }

    def scan_filtered(
        self,
        columns: Sequence[str] | None = None,
        partitions: Sequence[str] | None = None,
        range_filters: Sequence[RangeFilter] | None = None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Late-materialised row scan: dicts are built only for surviving rows.

        Mutable cell values are copied so callers own the rows outright (the
        same contract as :meth:`scan`) without corrupting the block cache.
        """
        names = list(columns) if columns is not None else list(self.columns)
        for block_columns in self.scan_columns(
            names, partitions, range_filters, column_predicates
        ):
            arrays = [block_columns[name] for name in names]
            for values in zip(*arrays):
                yield {name: _own_value(value) for name, value in zip(names, values)}

    def aggregate(
        self,
        aggregates: Mapping[str, tuple[str, str]],
        partitions: Sequence[str] | None = None,
        range_filters: Sequence[RangeFilter] | None = None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None = None,
        group_by: str | None = None,
        group_key: Callable[[Any], Any] | None = None,
    ) -> dict[str, Any] | dict[Any, dict[str, Any]]:
        """Aggregate over the table without materialising rows.

        ``aggregates`` maps output aliases to ``(function, column)`` pairs with
        functions ``count``/``min``/``max``/``sum``/``avg`` (``count`` of
        ``"*"`` counts rows, of a column counts non-null values; the others
        ignore nulls).  With ``group_by`` the result is ``{group: {alias:
        value}}``, where the group is the (optionally ``group_key``-mapped)
        value of the ``group_by`` column; without it, one ``{alias: value}``
        dict.

        Unfiltered, ungrouped ``count``/``min``/``max`` aggregates are answered
        purely from the per-block statistics kept on the name-node side — no
        DFS read happens at all (unless a block's statistics are inconclusive,
        e.g. a mixed-type column, in which case that call falls back to the
        block-reading path; values with no consistent ordering then raise
        :class:`WarehouseError`).
        """
        for alias, (function, column) in aggregates.items():
            if function not in _AGGREGATE_FUNCTIONS:
                raise WarehouseError(f"unknown aggregate function {function!r} for {alias!r}")
            if column == "*":
                if function != "count":
                    raise WarehouseError(f"aggregate {function!r} needs a column, not '*'")
            else:
                self._check_columns([column])
        if group_by is not None:
            self._check_columns([group_by])
        self._check_columns(f[0] for f in range_filters or ())
        self._check_columns(column_predicates or ())

        unfiltered = not range_filters and not column_predicates
        if group_by is None and unfiltered and all(
            function in _STATS_ONLY_FUNCTIONS for function, _column in aggregates.values()
        ):
            result = self._aggregate_from_stats(aggregates, partitions)
            if result is not None:
                return result

        return self._aggregate_blocks(
            aggregates, partitions, range_filters, column_predicates, group_by, group_key
        )

    def read_column(self, column: str, partitions: Sequence[str] | None = None) -> list[Any]:
        """All values of ``column``, read directly from the block column arrays.

        Mutable values are copied so callers own the result outright (the
        cached blocks stay pristine, matching the :meth:`scan` contract).
        """
        self._check_columns([column])
        out: list[Any] = []
        for _partition, ref in self._iter_refs(partitions, None):
            out.extend(_own_value(v) for v in self._load_block(ref).columns[column])
        return out

    def block_count(self) -> int:
        return sum(len(refs) for refs in self._partitions.values())

    def cache_info(self) -> dict[str, int]:
        """Block-cache statistics: hits, misses, resident entries, capacity."""
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "entries": len(self._cache),
            "capacity": self._cache.capacity,
        }

    # ------------------------------------------------------------- internals

    def _check_columns(self, columns: Iterable[str]) -> None:
        missing = [c for c in columns if c not in self.columns]
        if missing:
            raise WarehouseError(f"table {self.name!r} has no column(s) {missing!r}")

    def _iter_refs(
        self,
        partitions: Sequence[str] | None,
        range_filters: Sequence[RangeFilter] | None,
    ) -> Iterator[tuple[str, _BlockRef]]:
        """Partition-pruned, zone-pruned iteration over block references."""
        wanted = set(partitions) if partitions is not None else None
        for partition in self.partitions():
            if wanted is not None and partition not in wanted:
                continue
            for ref in self._partitions[partition]:
                if range_filters and not _zones_might_match(ref.stats, range_filters):
                    continue
                yield partition, ref

    def _load_block(self, ref: _BlockRef) -> ColumnarBlock:
        block = self._cache.get(ref.path)
        if block is None:
            block = ColumnarBlock.from_bytes(self.dfs.read_file(ref.path))
            self._cache.put(ref.path, block)
        return block

    def _aggregate_from_stats(
        self,
        aggregates: Mapping[str, tuple[str, str]],
        partitions: Sequence[str] | None,
    ) -> dict[str, Any] | None:
        """Answer count/min/max from block statistics; ``None`` if inconclusive."""
        out: dict[str, Any] = {}
        refs = [ref for _partition, ref in self._iter_refs(partitions, None)]
        for alias, (function, column) in aggregates.items():
            if function == "count":
                if column == "*":
                    out[alias] = sum(ref.n_rows for ref in refs)
                else:
                    total = 0
                    for ref in refs:
                        stats = ref.stats.get(column)
                        if stats is None:
                            return None
                        total += ref.n_rows - stats["nulls"]
                    out[alias] = total
            else:  # min / max
                extremes = []
                for ref in refs:
                    stats = ref.stats.get(column)
                    if stats is None:
                        return None
                    if stats[function] is None:
                        if stats["nulls"] < ref.n_rows:
                            # Non-null values exist but min/max were not
                            # comparable (mixed types): stats are inconclusive.
                            return None
                        continue
                    extremes.append(stats[function])
                if not extremes:
                    out[alias] = None
                else:
                    try:
                        out[alias] = min(extremes) if function == "min" else max(extremes)
                    except TypeError:
                        return None
        return out

    def _aggregate_blocks(
        self,
        aggregates: Mapping[str, tuple[str, str]],
        partitions: Sequence[str] | None,
        range_filters: Sequence[RangeFilter] | None,
        column_predicates: Mapping[str, Callable[[Any], bool]] | None,
        group_by: str | None,
        group_key: Callable[[Any], Any] | None,
    ) -> dict[str, Any] | dict[Any, dict[str, Any]]:
        states: dict[Any, dict[str, _AggState]] = {}
        row_counter: Counter = Counter()  # fast path for grouped count(*)
        only_row_counts = all(
            function == "count" and column == "*" for function, column in aggregates.values()
        )
        for _partition, ref in self._iter_refs(partitions, range_filters):
            block = self._load_block(ref)
            selection = _selection_vector(block, range_filters, column_predicates)
            if selection is not None and not selection:
                continue
            if group_by is None:
                keys: list[Any] | None = None
            else:
                group_values = block.columns[group_by]
                if selection is not None:
                    group_values = [group_values[i] for i in selection]
                if group_key is not None:
                    group_values = [group_key(v) for v in group_values]
                keys = group_values
            n_selected = block.n_rows if selection is None else len(selection)
            if only_row_counts:
                if keys is None:
                    row_counter[None] += n_selected
                else:
                    try:
                        row_counter.update(keys)
                    except TypeError as exc:
                        raise _unhashable_group(group_by, exc) from exc
                continue

            # Compact each referenced column once per block, and partition the
            # surviving rows by group key once per block — not once per alias.
            compacted: dict[str, list[Any]] = {}

            def selected_values(column: str) -> list[Any]:
                if column not in compacted:
                    array = block.columns[column]
                    compacted[column] = (
                        list(array) if selection is None else [array[i] for i in selection]
                    )
                return compacted[column]

            group_positions: dict[Any, list[int]] | None = None
            if keys is not None:
                group_positions = {}
                try:
                    for position, key in enumerate(keys):
                        group_positions.setdefault(key, []).append(position)
                except TypeError as exc:
                    raise _unhashable_group(group_by, exc) from exc

            for alias, (function, column) in aggregates.items():
                if group_positions is None:
                    cell = states.setdefault(None, {}).setdefault(alias, _AggState())
                    if column == "*":
                        cell.update(function, [], n_selected, star=True)
                    else:
                        values = selected_values(column)
                        cell.update(function, values, len(values), star=False)
                elif column == "*":
                    for key, positions in group_positions.items():
                        cell = states.setdefault(key, {}).setdefault(alias, _AggState())
                        cell.update(function, [], len(positions), star=True)
                else:
                    values = selected_values(column)
                    for key, positions in group_positions.items():
                        cell = states.setdefault(key, {}).setdefault(alias, _AggState())
                        group_values = [values[p] for p in positions]
                        cell.update(function, group_values, len(group_values), star=False)

        if only_row_counts:
            if group_by is None:
                total = row_counter[None] if row_counter else 0
                return {alias: total for alias in aggregates}
            return {
                key: {alias: count for alias in aggregates}
                for key, count in row_counter.items()
            }

        def finalise(group_states: dict[str, _AggState]) -> dict[str, Any]:
            return {
                alias: group_states[alias].result(aggregates[alias][0])
                for alias in aggregates
            }

        if group_by is None:
            empty = {alias: _AggState() for alias in aggregates}
            return finalise(states.get(None, empty))
        return {key: finalise(group_states) for key, group_states in states.items()}


class _AggState:
    """Accumulator for one (group, aggregate) cell."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum: Any = None
        self.maximum: Any = None

    def update(self, function: str, values: list[Any], n_selected: int, star: bool) -> None:
        if function == "count":
            self.count += n_selected if star else sum(1 for v in values if v is not None)
            return
        non_null = [v for v in values if v is not None]
        if not non_null:
            return
        try:
            if function in ("sum", "avg"):
                self.count += len(non_null)
                self.total += sum(non_null)
            elif function == "min":
                low = min(non_null)
                self.minimum = low if self.minimum is None else min(self.minimum, low)
            elif function == "max":
                high = max(non_null)
                self.maximum = high if self.maximum is None else max(self.maximum, high)
        except TypeError as exc:
            raise WarehouseError(f"column values have no consistent ordering for {function!r}: {exc}") from exc

    def result(self, function: str) -> Any:
        if function == "count":
            return self.count
        if function == "sum":
            return self.total if self.count else None
        if function == "avg":
            return self.total / self.count if self.count else None
        return self.minimum if function == "min" else self.maximum


def _selection_vector(
    block: ColumnarBlock,
    range_filters: Sequence[RangeFilter] | None,
    column_predicates: Mapping[str, Callable[[Any], bool]] | None,
) -> list[int] | None:
    """Row indices surviving all filters; ``None`` means every row survives."""
    selection: list[int] | None = None
    for column, low, high in range_filters or ():
        if low is None and high is None:
            continue
        array = block.columns[column]
        try:
            if selection is None:
                selection = [
                    i for i, v in enumerate(array)
                    if v is not None
                    and (low is None or v >= low)
                    and (high is None or v <= high)
                ]
            else:
                selection = [
                    i for i in selection
                    if array[i] is not None
                    and (low is None or array[i] >= low)
                    and (high is None or array[i] <= high)
                ]
        except TypeError as exc:
            raise WarehouseError(
                f"column {column!r} values have no consistent ordering for range filter: {exc}"
            ) from exc
        if not selection:
            return selection
    for column, predicate in (column_predicates or {}).items():
        array = block.columns[column]
        if selection is None:
            selection = [i for i, v in enumerate(array) if predicate(v)]
        else:
            selection = [i for i in selection if predicate(array[i])]
        if not selection:
            return selection
    return selection


def _zones_might_match(
    stats: dict[str, dict[str, Any]], range_filters: Sequence[RangeFilter]
) -> bool:
    """Conjunctive zone-map check: every filter must possibly match the block."""
    for column, low, high in range_filters:
        column_stats = stats.get(column)
        if column_stats is not None and not _zone_might_match(column_stats, low, high):
            return False
    return True


def _zone_might_match(stats: dict[str, Any], low: Any, high: Any) -> bool:
    if stats.get("min") is None or stats.get("max") is None:
        return True
    try:
        if low is not None and stats["max"] < low:
            return False
        if high is not None and stats["min"] > high:
            return False
    except TypeError:
        return True
    return True


class Warehouse:
    """The collection of warehouse tables backed by one DFS."""

    def __init__(
        self,
        dfs: DistributedFileSystem | None = None,
        block_rows: int = 4096,
        cache_blocks: int = 64,
    ) -> None:
        self.dfs = dfs or DistributedFileSystem()
        self.block_rows = block_rows
        self.cache_blocks = cache_blocks
        self._tables: dict[str, WarehouseTable] = {}

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        partition_column: str,
        partition_by: str = "day",
        if_not_exists: bool = False,
    ) -> WarehouseTable:
        """Create a table partitioned by ``partition_column`` (by day or by value)."""
        if name in self._tables:
            if if_not_exists:
                return self._tables[name]
            raise WarehouseError(f"warehouse table {name!r} already exists")
        if partition_by == "day":
            partitioner = day_partitioner(partition_column)
        elif partition_by == "value":
            partitioner = value_partitioner(partition_column)
        else:
            raise WarehouseError(f"unknown partitioning scheme {partition_by!r}")
        table = WarehouseTable(
            name=name,
            columns=columns,
            dfs=self.dfs,
            partitioner=partitioner,
            block_rows=self.block_rows,
            cache_blocks=self.cache_blocks,
        )
        self._tables[name] = table
        return table

    def table(self, name: str) -> WarehouseTable:
        if name not in self._tables:
            raise WarehouseError(f"no warehouse table named {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        for partition in list(table.partitions()):
            table.drop_partition(partition)
        del self._tables[name]

    def total_rows(self) -> int:
        return sum(table.row_count() for table in self._tables.values())
