"""Partitioned columnar warehouse tables over the simulated DFS.

Each :class:`WarehouseTable` is partitioned by the value of one column
(typically the calendar day of a timestamp); every partition holds one or more
columnar blocks persisted as DFS files.  Scans support partition pruning,
column projection and zone-map (min/max) predicate push-down — the access
pattern of the platform's daily analytics and periodic training jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime
from typing import Any, Callable, Iterable, Iterator, Sequence

from ...errors import WarehouseError
from .blocks import ColumnarBlock
from .dfs import DistributedFileSystem


def day_partitioner(column: str) -> Callable[[dict[str, Any]], str]:
    """Partition rows by the calendar day of a timestamp column."""

    def partition(row: dict[str, Any]) -> str:
        value = row.get(column)
        if isinstance(value, datetime):
            return value.date().isoformat()
        if isinstance(value, date):
            return value.isoformat()
        if isinstance(value, str) and len(value) >= 10:
            return value[:10]
        return "unknown"

    return partition


def value_partitioner(column: str) -> Callable[[dict[str, Any]], str]:
    """Partition rows by the raw value of a column."""

    def partition(row: dict[str, Any]) -> str:
        value = row.get(column)
        return "null" if value is None else str(value)

    return partition


@dataclass
class _BlockRef:
    path: str
    n_rows: int
    stats: dict[str, dict[str, Any]]


class WarehouseTable:
    """One partitioned columnar table."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        dfs: DistributedFileSystem,
        partitioner: Callable[[dict[str, Any]], str],
        block_rows: int = 4096,
    ) -> None:
        if not columns:
            raise WarehouseError(f"table {name!r} needs at least one column")
        if block_rows < 1:
            raise WarehouseError("block_rows must be >= 1")
        self.name = name
        self.columns = list(columns)
        self.dfs = dfs
        self.partitioner = partitioner
        self.block_rows = block_rows
        self._partitions: dict[str, list[_BlockRef]] = {}
        self._block_counter = 0

    # ---------------------------------------------------------------- writes

    def append(self, rows: Iterable[dict[str, Any]]) -> int:
        """Append rows, grouping them into per-partition blocks; returns rows written."""
        grouped: dict[str, list[dict[str, Any]]] = {}
        count = 0
        for row in rows:
            partition = self.partitioner(row)
            grouped.setdefault(partition, []).append(row)
            count += 1
        for partition, partition_rows in grouped.items():
            for start in range(0, len(partition_rows), self.block_rows):
                chunk = partition_rows[start:start + self.block_rows]
                self._write_block(partition, chunk)
        return count

    def _write_block(self, partition: str, rows: list[dict[str, Any]]) -> None:
        block = ColumnarBlock.from_rows(rows, self.columns)
        self._block_counter += 1
        path = f"/warehouse/{self.name}/{partition}/block-{self._block_counter:06d}.json"
        self.dfs.write_file(path, block.to_bytes())
        self._partitions.setdefault(partition, []).append(
            _BlockRef(path=path, n_rows=block.n_rows, stats=block.stats)
        )

    def drop_partition(self, partition: str) -> int:
        """Delete every block of ``partition``; returns the number of rows removed."""
        refs = self._partitions.pop(partition, [])
        removed = 0
        for ref in refs:
            self.dfs.delete_file(ref.path)
            removed += ref.n_rows
        return removed

    # ----------------------------------------------------------------- reads

    def partitions(self) -> list[str]:
        """All partition keys, sorted."""
        return sorted(self._partitions)

    def row_count(self, partition: str | None = None) -> int:
        """Total rows (optionally of a single partition)."""
        if partition is not None:
            return sum(ref.n_rows for ref in self._partitions.get(partition, []))
        return sum(ref.n_rows for refs in self._partitions.values() for ref in refs)

    def scan(
        self,
        columns: Sequence[str] | None = None,
        partitions: Sequence[str] | None = None,
        predicate: Callable[[dict[str, Any]], bool] | None = None,
        zone_filter: tuple[str, Any, Any] | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Scan the table.

        Parameters
        ----------
        columns:
            Columns to materialise (all by default).
        partitions:
            Restrict the scan to these partition keys (partition pruning).
        predicate:
            Row-level filter applied after reading a block.
        zone_filter:
            ``(column, low, high)`` bounds used to skip blocks whose min/max
            statistics prove they contain no matching rows.
        """
        wanted = set(partitions) if partitions is not None else None
        for partition in self.partitions():
            if wanted is not None and partition not in wanted:
                continue
            for ref in self._partitions[partition]:
                if zone_filter is not None:
                    column, low, high = zone_filter
                    block_stats = ref.stats.get(column)
                    if block_stats is not None and not _zone_might_match(block_stats, low, high):
                        continue
                block = ColumnarBlock.from_bytes(self.dfs.read_file(ref.path))
                for row in block.to_rows(columns):
                    if predicate is None or predicate(row):
                        yield row

    def read_column(self, column: str, partitions: Sequence[str] | None = None) -> list[Any]:
        """All values of ``column`` (optionally restricted to partitions)."""
        return [row[column] for row in self.scan(columns=[column], partitions=partitions)]

    def block_count(self) -> int:
        return sum(len(refs) for refs in self._partitions.values())


def _zone_might_match(stats: dict[str, Any], low: Any, high: Any) -> bool:
    if stats.get("min") is None or stats.get("max") is None:
        return True
    try:
        if low is not None and stats["max"] < low:
            return False
        if high is not None and stats["min"] > high:
            return False
    except TypeError:
        return True
    return True


class Warehouse:
    """The collection of warehouse tables backed by one DFS."""

    def __init__(self, dfs: DistributedFileSystem | None = None, block_rows: int = 4096) -> None:
        self.dfs = dfs or DistributedFileSystem()
        self.block_rows = block_rows
        self._tables: dict[str, WarehouseTable] = {}

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        partition_column: str,
        partition_by: str = "day",
        if_not_exists: bool = False,
    ) -> WarehouseTable:
        """Create a table partitioned by ``partition_column`` (by day or by value)."""
        if name in self._tables:
            if if_not_exists:
                return self._tables[name]
            raise WarehouseError(f"warehouse table {name!r} already exists")
        if partition_by == "day":
            partitioner = day_partitioner(partition_column)
        elif partition_by == "value":
            partitioner = value_partitioner(partition_column)
        else:
            raise WarehouseError(f"unknown partitioning scheme {partition_by!r}")
        table = WarehouseTable(
            name=name,
            columns=columns,
            dfs=self.dfs,
            partitioner=partitioner,
            block_rows=self.block_rows,
        )
        self._tables[name] = table
        return table

    def table(self, name: str) -> WarehouseTable:
        if name not in self._tables:
            raise WarehouseError(f"no warehouse table named {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        for partition in list(table.partitions()):
            table.drop_partition(partition)
        del self._tables[name]

    def total_rows(self) -> int:
        return sum(table.row_count() for table in self._tables.values())
