"""Distributed Storage substrate (the warehouse half of the hybrid data layer).

A simulated block-replicated distributed file system (:class:`DistributedFileSystem`)
plays the role of HDFS, and a partitioned columnar table format
(:class:`WarehouseTable` inside a :class:`Warehouse`) plays the role of the
Spark-managed warehouse tables the paper's analytics jobs read.  Tables expose
both a row-at-a-time ``scan`` and the vectorised
``scan_columns``/``scan_filtered``/``aggregate`` path (selection vectors over
raw column arrays, stats-only aggregates, decoded-block LRU cache).
"""

from .dfs import DataNode, DistributedFileSystem
from .blocks import BLOCK_FORMAT_VERSION, ColumnarBlock
from .warehouse import Warehouse, WarehouseTable, day_partitioner, value_partitioner

__all__ = [
    "BLOCK_FORMAT_VERSION",
    "DataNode",
    "DistributedFileSystem",
    "ColumnarBlock",
    "Warehouse",
    "WarehouseTable",
    "day_partitioner",
    "value_partitioner",
]
