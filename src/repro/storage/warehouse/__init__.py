"""Distributed Storage substrate (the warehouse half of the hybrid data layer).

A simulated block-replicated distributed file system (:class:`DistributedFileSystem`)
plays the role of HDFS, and a partitioned columnar table format
(:class:`WarehouseTable` inside a :class:`Warehouse`) plays the role of the
Spark-managed warehouse tables the paper's analytics jobs read.
"""

from .dfs import DataNode, DistributedFileSystem
from .blocks import ColumnarBlock
from .warehouse import Warehouse, WarehouseTable

__all__ = [
    "DataNode",
    "DistributedFileSystem",
    "ColumnarBlock",
    "Warehouse",
    "WarehouseTable",
]
