"""Distributed Storage substrate (the warehouse half of the hybrid data layer).

A simulated block-replicated distributed file system (:class:`DistributedFileSystem`)
plays the role of HDFS, and a partitioned columnar table format
(:class:`WarehouseTable` inside a :class:`Warehouse`) plays the role of the
Spark-managed warehouse tables the paper's analytics jobs read.  Tables expose
both a row-at-a-time ``scan`` and the vectorised
``scan_columns``/``scan_filtered``/``aggregate`` path (selection vectors over
raw column arrays, stats-only aggregates, decoded-block LRU cache).  Standing
grouped aggregations can additionally be registered as incremental
materialized roll-ups (:mod:`.rollups`): materialised per partition, refreshed
only where the partition's block set changed, served with zero DFS reads.
"""

from .dfs import DataNode, DistributedFileSystem
from .blocks import BLOCK_FORMAT_VERSION, ColumnarBlock
from .warehouse import Warehouse, WarehouseTable, day_partitioner, value_partitioner
from .rollups import (
    MaterializedRollup,
    RollupManager,
    RollupRefreshReport,
    RollupSpec,
)

__all__ = [
    "BLOCK_FORMAT_VERSION",
    "DataNode",
    "DistributedFileSystem",
    "ColumnarBlock",
    "MaterializedRollup",
    "RollupManager",
    "RollupRefreshReport",
    "RollupSpec",
    "Warehouse",
    "WarehouseTable",
    "day_partitioner",
    "value_partitioner",
]
