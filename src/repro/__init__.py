"""Reproduction of the SciLens News Platform (VLDB 2020).

A from-scratch Python implementation of the system described in

    Romanou, Smeros, Castillo, Aberer.
    "SciLens News Platform: A System for Real-Time Evaluation of News Articles."
    PVLDB 13(12): 2969-2972, 2020.

The top-level namespace re-exports the pieces most users need: the domain
model, the platform orchestrator, the indicator engine, the evaluation
pipeline, the insights engine, the Indicators-API gateway builder and the
COVID-19 scenario generator.  See ``README.md`` for a quickstart and the
subsystem map, and ``docs/`` for the storage-layer internals.
"""

from .config import (
    AnalyticsConfig,
    ApiConfig,
    IndicatorConfig,
    PlatformConfig,
    ServingConfig,
    StorageConfig,
    StreamingConfig,
)
from .errors import SciLensError
from .models import (
    Article,
    ExpertReview,
    Outlet,
    RatingClass,
    Reaction,
    ReactionKind,
    SocialPost,
)
from .core.indicators import (
    ContentIndicators,
    ContextIndicators,
    IndicatorEngine,
    QualityProfile,
    SocialIndicators,
)
from .core.insights import DistributionComparison, InsightsEngine, NewsroomActivity, TopicInsights
from .core.pipeline import ArticleEvaluationPipeline
from .core.platform import SciLensPlatform
from .core.scoring import ArticleAssessment, fuse_scores
from .api import ApiGateway, AsyncGateway, ShardedGateway, build_gateway, build_serving_tier
from .simulation import CovidScenarioConfig, generate_covid_scenario

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SciLensError",
    "PlatformConfig",
    "StreamingConfig",
    "StorageConfig",
    "AnalyticsConfig",
    "IndicatorConfig",
    "ApiConfig",
    "ServingConfig",
    "Article",
    "ExpertReview",
    "Outlet",
    "RatingClass",
    "Reaction",
    "ReactionKind",
    "SocialPost",
    "ContentIndicators",
    "ContextIndicators",
    "SocialIndicators",
    "QualityProfile",
    "IndicatorEngine",
    "NewsroomActivity",
    "DistributionComparison",
    "TopicInsights",
    "InsightsEngine",
    "ArticleEvaluationPipeline",
    "SciLensPlatform",
    "ArticleAssessment",
    "fuse_scores",
    "ApiGateway",
    "AsyncGateway",
    "ShardedGateway",
    "build_gateway",
    "build_serving_tier",
    "CovidScenarioConfig",
    "generate_covid_scenario",
]
