"""Indicators API: the micro-service layer serving the web application.

"The last core component of our system is the Indicators API, which is
responsible for the real-time article evaluation.  Its architecture is based
on micro-services, which are lightweight, loosely coupled services that
support parallel execution." (§3.3)

The services here are in-process objects exchanging request/response payloads
through a gateway — the same routing/caching structure the HTTP deployment
uses, minus the network.
"""

from .service import MicroService, ServiceRequest, ServiceResponse
from .cache import TtlCache
from .gateway import ApiGateway
from .articles_service import ArticlesService
from .indicators_service import IndicatorsService
from .insights_service import InsightsService
from .monitoring_service import MonitoringService
from .reviews_service import ReviewsService
from .serving import (
    AdmissionController,
    AsyncGateway,
    RequestCoalescer,
    ShardedGateway,
    build_serving_tier,
)

__all__ = [
    "MicroService",
    "ServiceRequest",
    "ServiceResponse",
    "TtlCache",
    "ApiGateway",
    "ArticlesService",
    "IndicatorsService",
    "InsightsService",
    "MonitoringService",
    "ReviewsService",
    "AdmissionController",
    "AsyncGateway",
    "RequestCoalescer",
    "ShardedGateway",
    "build_serving_tier",
]


def build_gateway(platform, config=None) -> ApiGateway:
    """Build a gateway with every standard service mounted for ``platform``."""
    from ..config import ApiConfig

    api_config = config or ApiConfig()
    gateway = ApiGateway(cache=TtlCache(api_config.cache_capacity, api_config.cache_ttl_seconds))
    gateway.mount(ArticlesService(platform))
    gateway.mount(IndicatorsService(platform))
    gateway.mount(InsightsService(platform))
    gateway.mount(ReviewsService(platform))
    gateway.mount(MonitoringService(platform))
    return gateway
