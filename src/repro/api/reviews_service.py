"""Reviews service: expert annotation of articles (§3.2)."""

from __future__ import annotations

from datetime import datetime

from ..errors import ReviewError, ValidationError
from ..models import ExpertReview
from .service import MicroService, ServiceRequest, ServiceResponse


class ReviewsService(MicroService):
    """Submit and read expert reviews.

    Operations: ``reviews.submit``, ``reviews.for_article``, ``reviews.summary``.
    """

    name = "reviews"
    cacheable = ()

    def __init__(self, platform) -> None:
        super().__init__()
        self.platform = platform
        self.register("submit", self._submit)
        self.register("for_article", self._for_article)
        self.register("summary", self._summary)

    def _submit(self, request: ServiceRequest) -> ServiceResponse:
        article_id = request.param("article_id", required=True)
        reviewer_id = request.param("reviewer_id", required=True)
        scores = request.param("scores", required=True)
        comment = request.param("comment", "")
        weight = float(request.param("reviewer_weight", 1.0))
        created_at = request.param("created_at") or datetime.utcnow()
        if isinstance(created_at, str):
            created_at = datetime.fromisoformat(created_at)

        try:
            review = ExpertReview(
                review_id=f"rev-{article_id}-{reviewer_id}-{created_at.strftime('%Y%m%d%H%M%S%f')}",
                article_id=article_id,
                reviewer_id=reviewer_id,
                created_at=created_at,
                scores={k: int(v) for k, v in dict(scores).items()},
                comment=str(comment),
                reviewer_weight=weight,
            )
            self.platform.add_expert_review(review)
        except (ReviewError, ValidationError) as exc:
            return ServiceResponse.bad_request(str(exc))
        return ServiceResponse.success({"review_id": review.review_id})

    def _for_article(self, request: ServiceRequest) -> ServiceResponse:
        article_id = request.param("article_id", required=True)
        reviews = self.platform.review_store.reviews_for_article(article_id)
        return ServiceResponse.success(
            {
                "article_id": article_id,
                "reviews": [
                    {
                        "review_id": review.review_id,
                        "reviewer_id": review.reviewer_id,
                        "created_at": review.created_at.isoformat(),
                        "scores": dict(review.scores),
                        "comment": review.comment,
                    }
                    for review in reviews
                ],
            }
        )

    def _summary(self, request: ServiceRequest) -> ServiceResponse:
        article_id = request.param("article_id", required=True)
        reviews = self.platform.review_store.latest_per_reviewer(article_id)
        summary = self.platform.review_aggregator.summarize(article_id, reviews)
        return ServiceResponse.success(summary.as_dict() | {"article_id": article_id})
