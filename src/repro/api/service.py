"""Micro-service framework: requests, responses and the service base class."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ServiceError


@dataclass(frozen=True)
class ServiceRequest:
    """One request routed to a service operation."""

    route: str
    params: dict[str, Any] = field(default_factory=dict)

    def param(self, name: str, default: Any = None, required: bool = False) -> Any:
        """Fetch one parameter, optionally requiring its presence."""
        if name in self.params:
            return self.params[name]
        if required:
            raise ServiceError(f"missing required parameter {name!r} for route {self.route!r}")
        return default


@dataclass(frozen=True)
class ServiceResponse:
    """The outcome of one service call."""

    status: int
    payload: Any = None
    error: str | None = None
    #: Seconds after which a throttled caller may retry (429 responses only).
    retry_after_s: float | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @classmethod
    def success(cls, payload: Any) -> "ServiceResponse":
        return cls(status=200, payload=payload)

    @classmethod
    def not_found(cls, message: str) -> "ServiceResponse":
        return cls(status=404, error=message)

    @classmethod
    def bad_request(cls, message: str) -> "ServiceResponse":
        return cls(status=400, error=message)

    @classmethod
    def failure(cls, message: str) -> "ServiceResponse":
        return cls(status=500, error=message)

    @classmethod
    def throttled(cls, message: str, retry_after_s: float | None = None) -> "ServiceResponse":
        """A 429-style admission-control rejection (typed, never cached)."""
        return cls(status=429, error=message, retry_after_s=retry_after_s)


class MicroService:
    """Base class of every Indicators-API micro-service.

    Subclasses set ``name`` and register their operations with
    :meth:`register`; the gateway exposes each operation under
    ``"<service name>.<operation>"``.
    """

    name: str = "service"

    def __init__(self) -> None:
        self._operations: dict[str, Callable[[ServiceRequest], ServiceResponse]] = {}
        self.request_count = 0

    def register(self, operation: str, handler: Callable[[ServiceRequest], ServiceResponse]) -> None:
        """Register one operation handler."""
        if not operation:
            raise ServiceError("operation name must be non-empty")
        self._operations[operation] = handler

    def operations(self) -> list[str]:
        """Fully qualified route names this service serves."""
        return [f"{self.name}.{operation}" for operation in sorted(self._operations)]

    def operation_names(self) -> list[str]:
        """Bare (unqualified) operation names this service serves."""
        return sorted(self._operations)

    def handle(self, operation: str, request: ServiceRequest) -> ServiceResponse:
        """Dispatch a request to one of the registered operations."""
        handler = self._operations.get(operation)
        if handler is None:
            return ServiceResponse.not_found(
                f"service {self.name!r} has no operation {operation!r}; "
                f"available: {', '.join(self.operations())}"
            )
        self.request_count += 1
        try:
            return handler(request)
        except ServiceError as exc:
            return ServiceResponse.bad_request(str(exc))
        except Exception as exc:  # service errors must not crash the gateway
            return ServiceResponse.failure(f"{type(exc).__name__}: {exc}")
