"""API gateway: routes requests to mounted micro-services, with caching."""

from __future__ import annotations

import copy
import json
from typing import Any

from ..errors import RouteNotFound
from .cache import MISS, TtlCache
from .service import MicroService, ServiceRequest, ServiceResponse


class ApiGateway:
    """Routes ``"<service>.<operation>"`` requests to the mounted services.

    Successful responses of operations registered as cacheable are stored in a
    TTL cache keyed by route + parameters, mirroring the response caching the
    deployed Indicators API uses for hot articles.
    """

    def __init__(self, cache: TtlCache | None = None) -> None:
        self._services: dict[str, MicroService] = {}
        self._cacheable: set[str] = set()
        # `cache if ... is not None`, NOT `cache or ...`: a just-built TtlCache
        # is empty, __len__ makes it falsy, and `or` would silently replace
        # every caller-supplied cache (dropping configured capacity/TTL).
        self.cache = cache if cache is not None else TtlCache()
        self.request_count = 0

    # ---------------------------------------------------------------- mounting

    def mount(self, service: MicroService, cacheable_operations: tuple[str, ...] | None = None) -> None:
        """Mount a service; its cacheable operations default to ``service.cacheable``."""
        self._services[service.name] = service
        cacheable = cacheable_operations
        if cacheable is None:
            cacheable = getattr(service, "cacheable", ())
        for operation in cacheable:
            self._cacheable.add(f"{service.name}.{operation}")

    def services(self) -> list[str]:
        return sorted(self._services)

    def routes(self) -> list[str]:
        """Every route the gateway can serve."""
        out: list[str] = []
        for service in self._services.values():
            out.extend(service.operations())
        return sorted(out)

    def is_cacheable(self, route: str) -> bool:
        """Whether successful responses of ``route`` are cached (and therefore
        safe for the serving tier to coalesce across callers)."""
        return route in self._cacheable

    # ---------------------------------------------------------------- dispatch

    def handle(self, route: str, params: dict[str, Any] | None = None) -> ServiceResponse:
        """Dispatch one request; raises :class:`RouteNotFound` for unknown services.

        An unknown *operation* on a known service is a structured 404
        :class:`ServiceResponse` naming the operations the service does
        serve — it never leaks an exception through the (cacheable)
        dispatch path.

        Cached responses are copied **on get only**: a successful cacheable
        response is stored as-is and every later hit is served a private
        deep copy.  The stored instance is owned by the cache from that
        point on — handlers build a fresh payload per call and callers must
        treat a just-computed cacheable response as read-only (mutating a
        *hit* is always safe; it is the caller's own copy).  The previous
        put-time deep copy paid a second full-payload copy per miss for no
        extra safety on the hit path — on hot 100-article ``articles.list``
        payloads that copy measured ~45% of the total serve time.
        """
        self.request_count += 1
        params = params or {}
        if "." not in route:
            raise RouteNotFound(f"malformed route {route!r} (expected '<service>.<operation>')")
        service_name, operation = route.split(".", 1)
        service = self._services.get(service_name)
        if service is None:
            raise RouteNotFound(f"no service named {service_name!r}")
        if operation not in service.operation_names():
            return ServiceResponse.not_found(
                f"service {service_name!r} has no operation {operation!r}; "
                f"available: {', '.join(service.operations())}"
            )

        cache_key = None
        if route in self._cacheable:
            cache_key = (route, json.dumps(params, sort_keys=True, default=str))
            cached = self.cache.get(cache_key, MISS)
            if cached is not MISS:
                # Hand every hit its own copy: the payload is mutable, and a
                # shared instance would let one caller corrupt the cache (and
                # every other caller's response).
                return copy.deepcopy(cached)

        response = service.handle(operation, ServiceRequest(route=route, params=params))
        if cache_key is not None and response.ok:
            self.cache.put(cache_key, response)
        return response

    def stats(self) -> dict[str, Any]:
        """Gateway and per-service request statistics."""
        return {
            "requests": self.request_count,
            "cache": self.cache.stats(),
            "services": {
                name: service.request_count for name, service in sorted(self._services.items())
            },
        }
