"""API gateway: routes requests to mounted micro-services, with caching."""

from __future__ import annotations

import copy
import json
from typing import Any

from ..errors import RouteNotFound
from .cache import MISS, TtlCache
from .service import MicroService, ServiceRequest, ServiceResponse


class ApiGateway:
    """Routes ``"<service>.<operation>"`` requests to the mounted services.

    Successful responses of operations registered as cacheable are stored in a
    TTL cache keyed by route + parameters, mirroring the response caching the
    deployed Indicators API uses for hot articles.
    """

    def __init__(self, cache: TtlCache | None = None) -> None:
        self._services: dict[str, MicroService] = {}
        self._cacheable: set[str] = set()
        self.cache = cache or TtlCache()
        self.request_count = 0

    # ---------------------------------------------------------------- mounting

    def mount(self, service: MicroService, cacheable_operations: tuple[str, ...] | None = None) -> None:
        """Mount a service; its cacheable operations default to ``service.cacheable``."""
        self._services[service.name] = service
        cacheable = cacheable_operations
        if cacheable is None:
            cacheable = getattr(service, "cacheable", ())
        for operation in cacheable:
            self._cacheable.add(f"{service.name}.{operation}")

    def services(self) -> list[str]:
        return sorted(self._services)

    def routes(self) -> list[str]:
        """Every route the gateway can serve."""
        out: list[str] = []
        for service in self._services.values():
            out.extend(service.operations())
        return sorted(out)

    # ---------------------------------------------------------------- dispatch

    def handle(self, route: str, params: dict[str, Any] | None = None) -> ServiceResponse:
        """Dispatch one request; raises :class:`RouteNotFound` for unknown services."""
        self.request_count += 1
        params = params or {}
        if "." not in route:
            raise RouteNotFound(f"malformed route {route!r} (expected '<service>.<operation>')")
        service_name, operation = route.split(".", 1)
        service = self._services.get(service_name)
        if service is None:
            raise RouteNotFound(f"no service named {service_name!r}")

        cache_key = None
        if route in self._cacheable:
            cache_key = (route, json.dumps(params, sort_keys=True, default=str))
            cached = self.cache.get(cache_key, MISS)
            if cached is not MISS:
                # Hand every hit its own copy: the payload is mutable, and a
                # shared instance would let one caller corrupt the cache (and
                # every other caller's response).
                return copy.deepcopy(cached)

        response = service.handle(operation, ServiceRequest(route=route, params=params))
        if cache_key is not None and response.ok:
            self.cache.put(cache_key, copy.deepcopy(response))
        return response

    def stats(self) -> dict[str, Any]:
        """Gateway and per-service request statistics."""
        return {
            "requests": self.request_count,
            "cache": self.cache.stats(),
            "services": {
                name: service.request_count for name, service in sorted(self._services.items())
            },
        }
