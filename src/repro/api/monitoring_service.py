"""Monitoring service: operational status, job history and model registry."""

from __future__ import annotations

from .service import MicroService, ServiceRequest, ServiceResponse


class MonitoringService(MicroService):
    """Operational visibility into the running platform.

    Operations: ``monitoring.status``, ``monitoring.jobs``, ``monitoring.models``,
    ``monitoring.stream``.
    """

    name = "monitoring"
    cacheable = ()

    def __init__(self, platform) -> None:
        super().__init__()
        self.platform = platform
        self.register("status", self._status)
        self.register("jobs", self._jobs)
        self.register("models", self._models)
        self.register("stream", self._stream)

    def _status(self, request: ServiceRequest) -> ServiceResponse:
        return ServiceResponse.success(self.platform.status())

    def _jobs(self, request: ServiceRequest) -> ServiceResponse:
        limit = int(request.param("limit", 50))
        history = self.platform.jobs.history[-limit:]
        return ServiceResponse.success(
            {
                "registered": self.platform.jobs.job_names(),
                "success_rate": self.platform.jobs.success_rate(),
                "runs": [
                    {
                        "name": run.name,
                        "started_at": run.started_at.isoformat(),
                        "elapsed_seconds": run.elapsed_seconds,
                        "succeeded": run.succeeded,
                        "error": run.error,
                    }
                    for run in history
                ],
            }
        )

    def _models(self, request: ServiceRequest) -> ServiceResponse:
        registry = self.platform.models
        models = {}
        for name in registry.names():
            record = registry.record(name)
            models[name] = {
                "latest_version": record.version,
                "trained_at": record.trained_at.isoformat(),
                "metrics": record.metrics,
            }
        return ServiceResponse.success({"models": models})

    def _stream(self, request: ServiceRequest) -> ServiceResponse:
        stats = self.platform.extraction.stats.as_dict()
        stats["lag"] = self.platform.extraction.lag()
        topics = {
            topic: {
                "partitions": self.platform.broker.topic_stats(topic).partitions,
                "messages": self.platform.broker.topic_stats(topic).total_messages,
            }
            for topic in self.platform.broker.topics()
        }
        return ServiceResponse.success({"pipeline": stats, "topics": topics})
