"""LRU + TTL response cache used by the gateway."""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Hashable

#: Sentinel distinguishing "not cached" from a cached ``None``/falsy value:
#: ``cache.get(key, MISS) is MISS`` is a definitive miss test.
MISS: Any = object()


class TtlCache:
    """A small LRU cache whose entries expire after ``ttl_seconds``.

    ``capacity=0`` disables caching entirely (every lookup misses).  When a
    :meth:`put` overflows capacity, expired entries are purged before any LRU
    eviction, so stale entries never force the eviction of fresh ones (and
    puts into a non-full cache stay O(1)).
    """

    def __init__(self, capacity: int = 1024, ttl_seconds: float = 300.0) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if ttl_seconds < 0:
            raise ValueError("ttl_seconds must be non-negative")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._entries: OrderedDict[Hashable, tuple[float, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _expired(self, stored_at: float, now: float) -> bool:
        return bool(self.ttl_seconds) and (now - stored_at) > self.ttl_seconds

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value, or ``default`` on miss/expiry.

        Pass :data:`MISS` as ``default`` to distinguish a cached ``None`` (or
        other falsy value) from an absent entry.
        """
        if self.capacity == 0:
            self.misses += 1
            return default
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return default
        stored_at, value = entry
        if self._expired(stored_at, time.monotonic()):
            del self._entries[key]
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store a value (evicting the least recently used entry when full).

        On overflow, expired entries are dropped first; a live entry is only
        LRU-evicted when the cache is genuinely full of fresh data.
        """
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (time.monotonic(), value)
        if len(self._entries) > self.capacity:
            self.purge_expired()
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many were removed."""
        if not self.ttl_seconds:
            return 0
        now = time.monotonic()
        doomed = [
            key
            for key, (stored_at, _value) in self._entries.items()
            if self._expired(stored_at, now)
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def invalidate(self, key: Hashable | None = None) -> None:
        """Drop one entry, or the whole cache when ``key`` is ``None``."""
        if key is None:
            self._entries.clear()
        else:
            self._entries.pop(key, None)

    def stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hits / total if total else 0.0,
        }
