"""LRU + TTL response cache used by the gateway."""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Hashable


class TtlCache:
    """A small LRU cache whose entries expire after ``ttl_seconds``.

    ``capacity=0`` disables caching entirely (every lookup misses).
    """

    def __init__(self, capacity: int = 1024, ttl_seconds: float = 300.0) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if ttl_seconds < 0:
            raise ValueError("ttl_seconds must be non-negative")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._entries: OrderedDict[Hashable, tuple[float, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """Return the cached value or ``None`` on miss/expiry."""
        if self.capacity == 0:
            self.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stored_at, value = entry
        if self.ttl_seconds and (time.monotonic() - stored_at) > self.ttl_seconds:
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store a value (evicting the least recently used entry when full)."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (time.monotonic(), value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, key: Hashable | None = None) -> None:
        """Drop one entry, or the whole cache when ``key`` is ``None``."""
        if key is None:
            self._entries.clear()
        else:
            self._entries.pop(key, None)

    def stats(self) -> dict[str, float]:
        total = self.hits + self.misses
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hits / total if total else 0.0,
        }
