"""The serving tier: admission control, coalescing, sharding, async front end.

Layered over the synchronous micro-service gateway (:mod:`repro.api`), this
package is the protection-and-scale middle layer between clients and the
platform backend — see ``docs/serving.md``:

* :mod:`.admission` — per-tenant token buckets + a global concurrency cap;
  rejected requests get a typed 429 with ``retry_after_s``.
* :mod:`.coalesce` — single-flight deduplication of identical in-flight
  cacheable reads (the hot-dashboard thundering herd executes once).
* :mod:`.sharding` — consistent-hash routing over N gateway shards behind
  the one :class:`ShardedGateway` front door.
* :mod:`.async_gateway` — an asyncio facade driving the sync tier on a
  bounded executor.

``build_serving_tier`` wires all of it from :class:`repro.config.ServingConfig`
and attaches the front door to the platform so ``status()["serving"]``
reports admitted/throttled/coalesced/per-shard counters.
"""

from __future__ import annotations

from .admission import AdmissionController, AdmissionDecision, ConcurrencyLimiter, TokenBucket
from .async_gateway import AsyncGateway
from .coalesce import RequestCoalescer
from .sharding import HashRing, ShardedGateway

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AsyncGateway",
    "ConcurrencyLimiter",
    "HashRing",
    "RequestCoalescer",
    "ShardedGateway",
    "TokenBucket",
    "build_serving_tier",
]


def build_serving_tier(platform, serving_config=None, api_config=None, attach: bool = True):
    """Build the sharded serving front door for ``platform``.

    Each shard is a fully-mounted gateway from :func:`repro.api.build_gateway`
    (its own response cache, shared platform backend).  Admission and
    coalescing follow ``serving_config`` (defaulting to the platform's
    ``config.serving`` section).  When ``attach`` is true the front door is
    registered on the platform so ``status()["serving"]`` reports it.
    """
    from .. import build_gateway

    serving = serving_config or platform.config.serving
    serving.validate()
    admission = None
    if serving.admission_enabled:
        admission = AdmissionController(
            rate_per_s=serving.admission_rate_per_s,
            burst=serving.admission_burst,
            max_concurrent=serving.max_concurrency,
            route_costs=dict(serving.route_cost_weights),
            default_cost=serving.default_route_cost,
        )
    front = ShardedGateway(
        shard_factory=lambda index: build_gateway(platform, api_config),
        n_shards=serving.shards,
        ring_replicas=serving.ring_replicas,
        admission=admission,
        coalesce=serving.coalesce_enabled,
    )
    if attach:
        platform.attach_serving(front)
    return front
