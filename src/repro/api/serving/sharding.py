"""Consistent-hash sharding of the gateway behind one front door.

``HashRing`` places every shard at ``replicas`` pseudo-random points on a
64-bit ring (the same process-independent :func:`repro.compute.shuffle.stable_hash`
used for shuffle partitioning and warehouse placement, over canonical keys);
a request key is served by the first shard clockwise from its hash.  Adding
or removing one shard therefore moves only ~1/N of the key space — the
property the shard caches rely on to stay warm through resizes.

``ShardedGateway`` is the serving-tier front door: admission control first
(per-tenant token buckets + the global concurrency cap), then single-flight
coalescing for cacheable reads, then consistent-hash routing to one of N
backend :class:`~repro.api.gateway.ApiGateway` shards, each carrying every
mounted service and its own response cache.
"""

from __future__ import annotations

import bisect
import json
from typing import Any, Callable, Hashable

from ...compute.shuffle import stable_hash
from ...errors import ServiceError
from ..gateway import ApiGateway
from ..service import ServiceResponse
from .admission import AdmissionController
from .coalesce import RequestCoalescer


class HashRing:
    """A consistent-hash ring with virtual nodes."""

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []          # sorted vnode hashes
        self._owners: list[str] = []          # owner of the vnode at the same index
        self._nodes: set[str] = set()

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add_node(self, name: str) -> None:
        if name in self._nodes:
            raise ValueError(f"node {name!r} already on the ring")
        self._nodes.add(name)
        for replica in range(self.replicas):
            point = stable_hash(("ring", name, replica))
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, name)

    def remove_node(self, name: str) -> None:
        if name not in self._nodes:
            raise ValueError(f"node {name!r} not on the ring")
        self._nodes.discard(name)
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != name]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def node_for(self, key: Hashable) -> str:
        """The node owning ``key``: first vnode clockwise from its hash."""
        if not self._nodes:
            raise ValueError("the ring has no nodes")
        point = stable_hash(key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):  # wrap around
            index = 0
        return self._owners[index]


class ShardedGateway:
    """N gateway shards behind admission control and request coalescing.

    ``shard_factory`` builds one fully-mounted backend gateway per shard
    (each with its own response cache).  ``handle`` is the front door:

    1. **Admission** — the tenant's token bucket and the global concurrency
       cap; a rejection returns a typed 429 :meth:`ServiceResponse.throttled`
       carrying ``retry_after_s``, and touches no shard.
    2. **Coalescing** — cacheable routes are single-flight per request key:
       identical in-flight reads execute once, every waiter gets an equal
       response (followers receive their own deep copy).
    3. **Routing** — the request key (route + canonical params JSON, the
       same key the response cache uses) picks a shard on the consistent-hash
       ring, so repeats of a hot key always land on the same warm cache.
    """

    def __init__(
        self,
        shard_factory: Callable[[int], ApiGateway],
        n_shards: int,
        *,
        ring_replicas: int = 64,
        admission: AdmissionController | None = None,
        coalesce: bool = True,
    ) -> None:
        if n_shards < 1:
            raise ServiceError("n_shards must be >= 1")
        self._shard_factory = shard_factory
        self._shards: dict[str, ApiGateway] = {}
        self._ring = HashRing(replicas=ring_replicas)
        for index in range(n_shards):
            self._add_shard(index)
        self.admission = admission
        self.coalescer = RequestCoalescer() if coalesce else None
        self.request_count = 0

    # ---------------------------------------------------------------- shards

    @staticmethod
    def _shard_name(index: int) -> str:
        return f"shard-{index}"

    def _add_shard(self, index: int) -> None:
        name = self._shard_name(index)
        if name in self._shards:
            raise ServiceError(f"shard {name!r} already exists")
        self._shards[name] = self._shard_factory(index)
        self._ring.add_node(name)

    def add_shard(self) -> str:
        """Grow the tier by one shard; only ~1/N of the keys re-route."""
        index = 0
        while self._shard_name(index) in self._shards:
            index += 1
        self._add_shard(index)
        return self._shard_name(index)

    def remove_shard(self, name: str) -> None:
        """Drain one shard off the ring (its keys spread over the survivors)."""
        if name not in self._shards:
            raise ServiceError(f"no shard named {name!r}")
        if len(self._shards) == 1:
            raise ServiceError("cannot remove the last shard")
        self._ring.remove_node(name)
        del self._shards[name]

    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    def shard(self, name: str) -> ApiGateway:
        return self._shards[name]

    def shard_for(self, route: str, params: dict[str, Any] | None = None) -> str:
        """The shard that would serve this request (exposed for tests/ops)."""
        return self._ring.node_for(self._request_key(route, params or {}))

    # --------------------------------------------------------------- serving

    @staticmethod
    def _request_key(route: str, params: dict[str, Any]) -> tuple[str, str]:
        return (route, json.dumps(params, sort_keys=True, default=str))

    def _any_shard(self) -> ApiGateway:
        return next(iter(self._shards.values()))

    def services(self) -> list[str]:
        return self._any_shard().services()

    def routes(self) -> list[str]:
        return self._any_shard().routes()

    def is_cacheable(self, route: str) -> bool:
        return self._any_shard().is_cacheable(route)

    def handle(
        self,
        route: str,
        params: dict[str, Any] | None = None,
        tenant: str = "default",
    ) -> ServiceResponse:
        """Dispatch one request through admission → coalescing → a shard."""
        self.request_count += 1
        params = params or {}
        if self.admission is not None:
            decision = self.admission.try_admit(tenant, route=route)
            if not decision.admitted:
                return ServiceResponse.throttled(
                    f"tenant {tenant!r} throttled ({decision.reason} limit)",
                    retry_after_s=decision.retry_after_s,
                )
        try:
            key = self._request_key(route, params)
            shard = self._shards[self._ring.node_for(key)]
            if self.coalescer is not None and self.is_cacheable(route):
                response, _coalesced = self.coalescer.execute(
                    key, lambda: shard.handle(route, params)
                )
                return response
            return shard.handle(route, params)
        finally:
            if self.admission is not None:
                self.admission.release()

    # ----------------------------------------------------------------- stats

    def stats(self) -> dict[str, Any]:
        """Front-door counters plus per-shard gateway statistics."""
        out: dict[str, Any] = {
            "enabled": True,
            "requests": self.request_count,
            "shards": len(self._shards),
            "admission": self.admission.stats() if self.admission is not None else None,
            "coalescing": self.coalescer.stats() if self.coalescer is not None else None,
            "per_shard": {
                name: gateway.stats() for name, gateway in sorted(self._shards.items())
            },
        }
        return out
