"""Asyncio front end driving the synchronous serving tier on an executor.

The micro-services and storage layers are synchronous by design (plain
Python, no event loop in the data path).  ``AsyncGateway`` exposes the same
``handle`` contract as coroutines: each call is submitted to a bounded
thread pool and awaited, so an asyncio application (or many thousands of
simulated clients) can multiplex requests over ``max_workers`` OS threads
while admission control, coalescing and sharding keep working unchanged —
concurrent identical reads issued with ``asyncio.gather`` really are in
flight together and coalesce into one backend execution.
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable

from ..service import ServiceResponse


class AsyncGateway:
    """Async facade over a :class:`ShardedGateway` (or a plain ``ApiGateway``).

    ``tenant`` is forwarded to backends that take one (the sharded front
    door); pass ``tenant=None`` for a plain single gateway backend.
    """

    def __init__(self, backend, max_workers: int = 8) -> None:
        self._backend = backend
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="serving"
        )

    async def handle(
        self,
        route: str,
        params: dict[str, Any] | None = None,
        tenant: str | None = "default",
    ) -> ServiceResponse:
        """Dispatch one request on the executor and await its response."""
        if tenant is None:
            call = functools.partial(self._backend.handle, route, params)
        else:
            call = functools.partial(self._backend.handle, route, params, tenant=tenant)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, call)

    async def handle_many(
        self,
        requests: Iterable[tuple[str, dict[str, Any] | None]],
        tenant: str | None = "default",
    ) -> list[ServiceResponse]:
        """Dispatch a batch concurrently (ordered like the input)."""
        return list(
            await asyncio.gather(
                *(self.handle(route, params, tenant=tenant) for route, params in requests)
            )
        )

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "AsyncGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
