"""Admission control: per-tenant token buckets and a global concurrency cap.

Two protections compose in front of the gateway shards:

* **Token buckets** bound each tenant's request *rate*: a bucket holds at
  most ``burst`` tokens, refills continuously at ``rate_per_s``, and every
  admitted request spends the *cost weight* of its route (default one token;
  heavy routes like ``insights.topic`` can be configured to spend more, so
  the rate limit tracks the work a tenant causes rather than its request
  count).  An abusive tenant drains its own bucket and gets typed 429s;
  well-behaved tenants are unaffected.
* **The concurrency limiter** bounds how many requests are *in flight* at
  once across every tenant and shard.  Excess load is shed immediately
  instead of queueing, which is what keeps the p99 of admitted requests
  bounded under overload (nobody waits behind an unbounded backlog).

Both are plain-threading safe and take an injectable monotonic ``clock`` so
refill math is testable under a fake clock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    #: ``None`` when admitted; otherwise ``"rate"`` or ``"concurrency"``.
    reason: str | None = None
    #: Seconds until the rejecting tenant's bucket holds a token again.
    retry_after_s: float | None = None


class TokenBucket:
    """A continuously-refilling token bucket (rate ``rate_per_s``, cap ``burst``)."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
        self._refilled_at = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def available(self) -> float:
        """Tokens currently in the bucket (after refill, read-only)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def seconds_until(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 when already there)."""
        with self._lock:
            self._refill(self._clock())
            deficit = tokens - self._tokens
            return max(0.0, deficit / self.rate_per_s)


class ConcurrencyLimiter:
    """A non-blocking in-flight cap with a high-water mark for observability."""

    def __init__(self, max_concurrent: int) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self._in_flight = 0
        self.high_water = 0
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            if self._in_flight >= self.max_concurrent:
                return False
            self._in_flight += 1
            self.high_water = max(self.high_water, self._in_flight)
            return True

    def release(self) -> None:
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release() without a matching acquire")
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight


class AdmissionController:
    """Per-tenant token buckets behind one global concurrency limiter.

    ``try_admit`` spends the route's cost weight from the calling tenant's
    bucket and claims a concurrency slot; the caller must :meth:`release` the
    slot when the request finishes (only when the decision was *admitted*).
    Tenant buckets are created lazily on first sight.  ``route_costs`` maps
    route names to token costs (``default_cost`` for everything else), so an
    expensive analytical route consumes a proportionally larger slice of its
    tenant's rate budget than a cheap point read.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        max_concurrent: int,
        rate_limiting: bool = True,
        clock: Callable[[], float] = time.monotonic,
        route_costs: Mapping[str, float] | None = None,
        default_cost: float = 1.0,
    ) -> None:
        if default_cost <= 0:
            raise ValueError("default_cost must be > 0")
        if route_costs and any(cost <= 0 for cost in route_costs.values()):
            raise ValueError("route costs must be > 0")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.rate_limiting = rate_limiting
        self.route_costs: dict[str, float] = dict(route_costs or {})
        self.default_cost = float(default_cost)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self.limiter = ConcurrencyLimiter(max_concurrent)
        self.admitted_total = 0
        self.throttled_total = 0
        self._stats_lock = threading.Lock()

    def route_cost(self, route: str | None) -> float:
        """Tokens one request of ``route`` spends (``default_cost`` fallback)."""
        if route is None:
            return self.default_cost
        return self.route_costs.get(route, self.default_cost)

    def bucket(self, tenant: str) -> TokenBucket:
        with self._buckets_lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate_per_s, self.burst, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def try_admit(self, tenant: str, route: str | None = None) -> AdmissionDecision:
        if self.rate_limiting:
            cost = self.route_cost(route)
            bucket = self.bucket(tenant)
            if not bucket.try_acquire(cost):
                with self._stats_lock:
                    self.throttled_total += 1
                return AdmissionDecision(
                    admitted=False, reason="rate",
                    retry_after_s=round(bucket.seconds_until(cost), 6),
                )
        if not self.limiter.try_acquire():
            with self._stats_lock:
                self.throttled_total += 1
            # The spent token is deliberately not refunded: a tenant pushing
            # into a saturated tier is exactly who the bucket should slow.
            return AdmissionDecision(admitted=False, reason="concurrency", retry_after_s=0.0)
        with self._stats_lock:
            self.admitted_total += 1
        return AdmissionDecision(admitted=True)

    def release(self) -> None:
        """Give back the concurrency slot of an admitted request."""
        self.limiter.release()

    def stats(self) -> dict[str, float | int]:
        with self._stats_lock:
            admitted, throttled = self.admitted_total, self.throttled_total
        return {
            "admitted": admitted,
            "throttled": throttled,
            "tenants": len(self._buckets),
            "in_flight": self.limiter.in_flight,
            "concurrency_high_water": self.limiter.high_water,
            "max_concurrency": self.limiter.max_concurrent,
        }
