"""Single-flight request coalescing for identical in-flight cacheable reads.

A hot dashboard key under concurrent load causes a thundering herd: every
client recomputes the same expensive read because none of them sees a cache
entry yet (or the route is freshness-pinned and never cached).  Single-flight
collapses the herd: the first request for a key becomes the *leader* and
executes; every request for the same key arriving while the leader is in
flight becomes a *follower* and waits on the leader's result.  All waiters
receive equal responses — followers get their own deep copy, so no payload
is ever shared between callers.

The gateway only routes **cacheable** operations through the coalescer:
cacheability is the existing marker for "idempotent read whose response is
shareable".  Writes and per-caller reads never coalesce.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, Hashable


class _Flight:
    """One in-flight leader execution plus everyone waiting on it."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class RequestCoalescer:
    """Deduplicates concurrent identical calls (``execute`` is single-flight)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _Flight] = {}
        self.leaders_total = 0
        self.coalesced_total = 0

    def in_flight(self) -> int:
        """Number of keys currently being computed by a leader."""
        with self._lock:
            return len(self._inflight)

    def execute(self, key: Hashable, fn: Callable[[], Any]) -> tuple[Any, bool]:
        """Run ``fn`` once per concurrent batch of identical ``key`` calls.

        Returns ``(result, coalesced)`` — ``coalesced`` is ``True`` when this
        call was a follower served from the leader's execution.  Followers
        receive a deep copy of the leader's result; the leader's own return
        value is handed back as-is (it flows through the normal gateway
        path, which owns response-sharing rules).  A leader exception
        propagates to the leader *and* every follower.
        """
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                self.leaders_total += 1
                is_leader = True
            else:
                flight.followers += 1
                self.coalesced_total += 1
                is_leader = False

        if is_leader:
            try:
                flight.result = fn()
            except BaseException as exc:  # propagate to every waiter, then re-raise
                flight.error = exc
                raise
            finally:
                # Unregister *before* waking waiters: a request arriving after
                # this point starts a fresh flight instead of reading a result
                # that may already be going stale.
                with self._lock:
                    self._inflight.pop(key, None)
                flight.done.set()
            return flight.result, False

        flight.done.wait()
        if flight.error is not None:
            raise flight.error
        return copy.deepcopy(flight.result), True

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "leaders": self.leaders_total,
                "coalesced": self.coalesced_total,
                "in_flight_keys": len(self._inflight),
            }
