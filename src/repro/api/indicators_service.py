"""Indicators service: the real-time article-evaluation endpoint (§4.1)."""

from __future__ import annotations

from ..errors import ArticleNotFound, ScrapingError
from .service import MicroService, ServiceRequest, ServiceResponse


class IndicatorsService(MicroService):
    """Real-time quality evaluation of articles.

    Operations: ``indicators.evaluate`` (by stored article id),
    ``indicators.evaluate_url`` (any URL, scraped on demand) and
    ``indicators.cached`` (last stored indicator payload).
    """

    name = "indicators"
    cacheable = ("cached",)

    def __init__(self, platform) -> None:
        super().__init__()
        self.platform = platform
        self.register("evaluate", self._evaluate)
        self.register("evaluate_url", self._evaluate_url)
        self.register("cached", self._cached)

    def _evaluate(self, request: ServiceRequest) -> ServiceResponse:
        article_id = request.param("article_id", required=True)
        try:
            assessment = self.platform.evaluate_article(article_id)
        except ArticleNotFound as exc:
            return ServiceResponse.not_found(str(exc))
        return ServiceResponse.success(assessment.to_payload())

    def _evaluate_url(self, request: ServiceRequest) -> ServiceResponse:
        url = request.param("url", required=True)
        try:
            assessment = self.platform.evaluate_url(url)
        except (ArticleNotFound, ScrapingError) as exc:
            return ServiceResponse.not_found(str(exc))
        return ServiceResponse.success(assessment.to_payload())

    def _cached(self, request: ServiceRequest) -> ServiceResponse:
        article_id = request.param("article_id", required=True)
        payload = self.platform.cached_indicators(article_id)
        if payload is None:
            return ServiceResponse.not_found(
                f"no cached indicators for article {article_id!r}"
            )
        return ServiceResponse.success({"article_id": article_id, "indicators": payload})
