"""Insights service: aggregated topic insights (§4.2)."""

from __future__ import annotations

from datetime import datetime

from ..errors import ArticleNotFound
from .service import MicroService, ServiceRequest, ServiceResponse


class InsightsService(MicroService):
    """Aggregated insights for a news topic.

    Operations: ``insights.topic`` (all three axes), ``insights.newsroom_activity``,
    ``insights.social_engagement``, ``insights.evidence_seeking``,
    ``insights.outlet_segments``.
    """

    name = "insights"
    cacheable = ("topic", "newsroom_activity", "social_engagement", "evidence_seeking")

    def __init__(self, platform) -> None:
        super().__init__()
        self.platform = platform
        self.register("topic", self._topic)
        self.register("newsroom_activity", self._newsroom_activity)
        self.register("social_engagement", self._social_engagement)
        self.register("evidence_seeking", self._evidence_seeking)
        self.register("outlet_segments", self._outlet_segments)

    # ------------------------------------------------------------- handlers

    def _compute(self, request: ServiceRequest):
        topic_key = request.param("topic", "covid19")
        window_start = _parse_ts(request.param("window_start"))
        window_end = _parse_ts(request.param("window_end"))
        return self.platform.topic_insights(
            topic_key=topic_key, window_start=window_start, window_end=window_end
        )

    def _topic(self, request: ServiceRequest) -> ServiceResponse:
        try:
            insights = self._compute(request)
        except ArticleNotFound as exc:
            return ServiceResponse.not_found(str(exc))
        activity = insights.newsroom_activity
        return ServiceResponse.success(
            {
                "topic": insights.topic_key,
                "metadata": insights.metadata,
                "newsroom_activity": {
                    "days": [day.isoformat() for day in activity.days],
                    "series": {k: list(v) for k, v in activity.series.items()},
                    "divergence": activity.divergence(),
                },
                "social_engagement": insights.social_engagement.summary(),
                "evidence_seeking": insights.evidence_seeking.summary(),
            }
        )

    def _newsroom_activity(self, request: ServiceRequest) -> ServiceResponse:
        try:
            insights = self._compute(request)
        except ArticleNotFound as exc:
            return ServiceResponse.not_found(str(exc))
        activity = insights.newsroom_activity
        return ServiceResponse.success(
            {
                "topic": insights.topic_key,
                "days": [day.isoformat() for day in activity.days],
                "series": {k: list(v) for k, v in activity.series.items()},
                "low_quality_series": list(activity.group_series(True)),
                "high_quality_series": list(activity.group_series(False)),
                "divergence": activity.divergence(),
            }
        )

    def _social_engagement(self, request: ServiceRequest) -> ServiceResponse:
        try:
            insights = self._compute(request)
        except ArticleNotFound as exc:
            return ServiceResponse.not_found(str(exc))
        comparison = insights.social_engagement
        return ServiceResponse.success(
            {
                "topic": insights.topic_key,
                "summary": comparison.summary(),
                "kde": comparison.kde_curves(),
            }
        )

    def _evidence_seeking(self, request: ServiceRequest) -> ServiceResponse:
        try:
            insights = self._compute(request)
        except ArticleNotFound as exc:
            return ServiceResponse.not_found(str(exc))
        comparison = insights.evidence_seeking
        return ServiceResponse.success(
            {
                "topic": insights.topic_key,
                "summary": comparison.summary(),
                "kde": comparison.kde_curves(),
            }
        )

    def _outlet_segments(self, request: ServiceRequest) -> ServiceResponse:
        return ServiceResponse.success({"segments": self.platform.outlet_segments()})


def _parse_ts(value) -> datetime | None:
    if value is None or isinstance(value, datetime):
        return value
    return datetime.fromisoformat(str(value))
