"""Articles service: browse and fetch the news collection."""

from __future__ import annotations

from typing import Any

from ..errors import ArticleNotFound
from .service import MicroService, ServiceRequest, ServiceResponse


class ArticlesService(MicroService):
    """Read access to stored articles and outlets.

    Operations: ``articles.get``, ``articles.by_url``, ``articles.list``,
    ``articles.search``, ``articles.outlets``.
    """

    name = "articles"
    cacheable = ("list", "outlets")

    def __init__(self, platform) -> None:
        super().__init__()
        self.platform = platform
        self.register("get", self._get)
        self.register("by_url", self._by_url)
        self.register("list", self._list)
        self.register("search", self._search)
        self.register("outlets", self._outlets)

    # ------------------------------------------------------------- handlers

    def _get(self, request: ServiceRequest) -> ServiceResponse:
        article_id = request.param("article_id", required=True)
        try:
            article = self.platform.get_article(article_id)
        except ArticleNotFound as exc:
            return ServiceResponse.not_found(str(exc))
        return ServiceResponse.success(_article_payload(article))

    def _by_url(self, request: ServiceRequest) -> ServiceResponse:
        url = request.param("url", required=True)
        try:
            article = self.platform.get_article_by_url(url)
        except ArticleNotFound as exc:
            return ServiceResponse.not_found(str(exc))
        return ServiceResponse.success(_article_payload(article))

    def _list(self, request: ServiceRequest) -> ServiceResponse:
        outlet_domain = request.param("outlet_domain")
        topic = request.param("topic")
        limit = int(request.param("limit", 100))
        if topic is None:
            # Hot path: the planner serves this as an index-backed count plus
            # an ORDER BY published_at DESC + LIMIT scan — no full sort, and
            # only ``limit`` articles are materialised.
            total = self.platform.count_articles(outlet_domain=outlet_domain)
            articles = self.platform.recent_articles(
                outlet_domain=outlet_domain, limit=limit
            )
            return ServiceResponse.success(
                {
                    "total": total,
                    "articles": [_article_payload(a) for a in articles],
                }
            )
        articles = self.platform.articles(outlet_domain=outlet_domain)
        articles = [a for a in articles if topic in a.topics]
        articles.sort(key=lambda a: a.published_at, reverse=True)
        return ServiceResponse.success(
            {
                "total": len(articles),
                "articles": [_article_payload(a) for a in articles[:limit]],
            }
        )

    def _search(self, request: ServiceRequest) -> ServiceResponse:
        query = request.param("query", required=True)
        limit = int(request.param("limit", 10))
        results = self.platform.search_articles(query, limit=limit)
        return ServiceResponse.success(
            {
                "total": len(results),
                "results": [
                    {**_article_payload(article), "score": round(score, 6)}
                    for article, score in results
                ],
            }
        )

    def _outlets(self, request: ServiceRequest) -> ServiceResponse:
        return ServiceResponse.success({"outlets": self.platform.outlets()})


def _article_payload(article) -> dict[str, Any]:
    return {
        "article_id": article.article_id,
        "url": article.url,
        "outlet_domain": article.outlet_domain,
        "title": article.title,
        "author": article.author,
        "published_at": article.published_at.isoformat(),
        "topics": list(article.topics),
        "word_count": article.word_count(),
    }
