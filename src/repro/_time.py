"""Time utilities shared across the platform.

All timestamps in the library are timezone-naive UTC ``datetime`` objects.
The helpers here centralise parsing, day bucketing and the definition of the
paper's COVID-19 collection window (2020-01-15 to 2020-03-15, 60 days).
"""

from __future__ import annotations

from datetime import date, datetime, timedelta
from typing import Iterator

#: Start of the paper's COVID-19 data-collection window (inclusive).
COVID_WINDOW_START = datetime(2020, 1, 15)

#: End of the paper's COVID-19 data-collection window (exclusive).
COVID_WINDOW_END = datetime(2020, 3, 15)

#: Number of days in the collection window.
COVID_WINDOW_DAYS = (COVID_WINDOW_END - COVID_WINDOW_START).days


def to_datetime(value: datetime | date | str | float | int) -> datetime:
    """Coerce ``value`` into a naive UTC ``datetime``.

    Accepts ``datetime`` (returned as-is), ``date`` (midnight), ISO-8601
    strings, and POSIX timestamps (``int``/``float``).
    """
    if isinstance(value, datetime):
        return value
    if isinstance(value, date):
        return datetime(value.year, value.month, value.day)
    if isinstance(value, str):
        return datetime.fromisoformat(value)
    if isinstance(value, (int, float)):
        return datetime.utcfromtimestamp(float(value))
    raise TypeError(f"cannot convert {type(value).__name__} to datetime")


def day_of(ts: datetime) -> date:
    """Return the calendar day (UTC) containing ``ts``."""
    return ts.date()


def day_index(ts: datetime, start: datetime = COVID_WINDOW_START) -> int:
    """Return the zero-based day index of ``ts`` relative to ``start``."""
    return (to_datetime(ts).date() - start.date()).days


def iter_days(start: datetime, end: datetime) -> Iterator[date]:
    """Yield every calendar day in ``[start, end)``."""
    current = start.date()
    last = end.date()
    while current < last:
        yield current
        current += timedelta(days=1)


def window_days(
    start: datetime = COVID_WINDOW_START, end: datetime = COVID_WINDOW_END
) -> list[date]:
    """Return the list of days covered by the collection window."""
    return list(iter_days(start, end))


def clamp_to_window(
    ts: datetime,
    start: datetime = COVID_WINDOW_START,
    end: datetime = COVID_WINDOW_END,
) -> datetime:
    """Clamp ``ts`` into ``[start, end)`` (used by generators)."""
    if ts < start:
        return start
    if ts >= end:
        return end - timedelta(seconds=1)
    return ts


def hours_between(earlier: datetime, later: datetime) -> float:
    """Return the (possibly negative) number of hours from ``earlier`` to ``later``."""
    return (later - earlier).total_seconds() / 3600.0


def days_between(earlier: datetime, later: datetime) -> float:
    """Return the (possibly negative) number of fractional days between two instants."""
    return (later - earlier).total_seconds() / 86400.0
