"""Reach: the social-media popularity proxy of §3.1.

Reach is measured "through the proxy of social media popularity, which
quantifies the impact of an article in a social media platform".  We provide
both the raw reaction count (the quantity Figure 5-left plots) and a weighted,
follower-aware reach score used by the indicator layer.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..models import Reaction, ReactionKind, SocialPost


@dataclass(frozen=True)
class ReachReport:
    """Reach summary for one article."""

    article_url: str
    n_posts: int
    n_reactions: int
    reaction_counts: dict[str, int]
    weighted_reach: float
    follower_exposure: int
    #: Normalised popularity in [0, 1] (log-scaled weighted reach).
    popularity: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n_posts": float(self.n_posts),
            "n_reactions": float(self.n_reactions),
            "weighted_reach": self.weighted_reach,
            "follower_exposure": float(self.follower_exposure),
            "popularity": self.popularity,
        }


def _popularity(weighted_reach: float, saturation: float = 10_000.0) -> float:
    """Map weighted reach onto [0, 1] with a log curve saturating at ``saturation``."""
    if weighted_reach <= 0:
        return 0.0
    return min(1.0, math.log1p(weighted_reach) / math.log1p(saturation))


def compute_reach(
    article_url: str,
    posts: Sequence[SocialPost],
    reactions: Sequence[Reaction] | Mapping[str, Sequence[Reaction]],
) -> ReachReport:
    """Compute the reach report of ``article_url``.

    ``posts`` are the postings that reference the article; ``reactions`` is
    either a flat sequence of reactions (matched to posts by ``post_id``) or a
    mapping ``post_id -> reactions``.
    """
    relevant_posts = [p for p in posts if p.article_url == article_url]
    post_ids = {p.post_id for p in relevant_posts}

    if isinstance(reactions, Mapping):
        flat: list[Reaction] = [
            reaction
            for post_id, post_reactions in reactions.items()
            if post_id in post_ids
            for reaction in post_reactions
        ]
    else:
        flat = [r for r in reactions if r.post_id in post_ids]

    counts: dict[str, int] = {kind.value: 0 for kind in ReactionKind}
    weighted = 0.0
    for reaction in flat:
        counts[reaction.kind.value] += 1
        weighted += reaction.kind.weight

    follower_exposure = sum(p.followers for p in relevant_posts)
    # Posts themselves contribute to reach: each posting is one unit of exposure.
    weighted += float(len(relevant_posts))

    return ReachReport(
        article_url=article_url,
        n_posts=len(relevant_posts),
        n_reactions=len(flat),
        reaction_counts=counts,
        weighted_reach=weighted,
        follower_exposure=follower_exposure,
        popularity=_popularity(weighted),
    )


def reactions_per_article(
    posts: Iterable[SocialPost], reactions: Iterable[Reaction]
) -> dict[str, int]:
    """Total reaction count per article URL (the Figure 5-left quantity)."""
    post_to_article: dict[str, str] = {}
    counts: dict[str, int] = defaultdict(int)
    for post in posts:
        post_to_article[post.post_id] = post.article_url
        counts.setdefault(post.article_url, 0)
    for reaction in reactions:
        article_url = post_to_article.get(reaction.post_id)
        if article_url is not None:
            counts[article_url] += 1
    return dict(counts)


def posts_per_article(posts: Iterable[SocialPost]) -> dict[str, int]:
    """Number of postings per article URL."""
    counts: dict[str, int] = defaultdict(int)
    for post in posts:
        counts[post.article_url] += 1
    return dict(counts)
