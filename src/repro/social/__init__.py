"""Social-media substrate.

Models social accounts, postings and reactions, computes reach (the paper's
popularity proxy), aggregates stance across the posts discussing an article,
and provides a diffusion-cascade model of how postings spread.
"""

from .accounts import SocialAccount, AccountRegistry
from .reach import ReachReport, compute_reach, reactions_per_article
from .stance_aggregate import StanceDistribution, aggregate_stance
from .cascade import Cascade, build_cascade, cascade_metrics

__all__ = [
    "SocialAccount",
    "AccountRegistry",
    "ReachReport",
    "compute_reach",
    "reactions_per_article",
    "StanceDistribution",
    "aggregate_stance",
    "Cascade",
    "build_cascade",
    "cascade_metrics",
]
