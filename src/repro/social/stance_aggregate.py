"""Aggregation of per-post stance into an article-level stance distribution.

The platform displays, for each article, how social-media users position
themselves towards it: positive (support / neutral comment) versus negative
(question / deny).  :func:`aggregate_stance` classifies every post (and
text-bearing reaction) and summarises the distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..models import Reaction, SocialPost
from ..nlp.stance import Stance, StanceClassifier


@dataclass(frozen=True)
class StanceDistribution:
    """Distribution of stances towards one article."""

    article_url: str
    counts: dict[str, int]
    n_classified: int

    def fraction(self, stance: Stance) -> float:
        """Fraction of posts with the given stance (0 when nothing classified)."""
        if self.n_classified == 0:
            return 0.0
        return self.counts.get(stance.value, 0) / self.n_classified

    @property
    def positive_fraction(self) -> float:
        """Share of posts supporting or neutrally commenting on the article."""
        return self.fraction(Stance.SUPPORT) + self.fraction(Stance.COMMENT)

    @property
    def negative_fraction(self) -> float:
        """Share of posts questioning or contradicting the article."""
        return self.fraction(Stance.QUESTION) + self.fraction(Stance.DENY)

    @property
    def net_stance(self) -> float:
        """Positive minus negative fraction, in [-1, 1]."""
        return self.positive_fraction - self.negative_fraction

    def as_dict(self) -> dict[str, float]:
        out = {f"stance_{stance.value}": self.fraction(stance) for stance in Stance}
        out["stance_positive"] = self.positive_fraction
        out["stance_negative"] = self.negative_fraction
        out["stance_net"] = self.net_stance
        return out


def aggregate_stance(
    article_url: str,
    posts: Sequence[SocialPost],
    reactions: Iterable[Reaction] = (),
    classifier: StanceClassifier | None = None,
) -> StanceDistribution:
    """Classify the stance of every post/reply about ``article_url`` and aggregate.

    Reactions are included only when they carry text (replies and quotes);
    likes and bare shares express engagement, not stance.
    """
    classifier = classifier or StanceClassifier()
    relevant_posts = [p for p in posts if p.article_url == article_url]
    post_ids = {p.post_id for p in relevant_posts}

    texts = [p.text for p in relevant_posts]
    texts.extend(
        r.text for r in reactions if r.post_id in post_ids and r.text.strip()
    )

    counts = {stance.value: 0 for stance in Stance}
    for text in texts:
        stance = classifier.analyse(text).stance
        counts[stance.value] += 1

    return StanceDistribution(
        article_url=article_url,
        counts=counts,
        n_classified=len(texts),
    )
