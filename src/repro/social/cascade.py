"""Diffusion cascades of article postings.

A cascade is the reply/quote tree rooted at the original postings about an
article.  Cascade structure (depth, breadth, virality) is a classic signal for
how content spreads; it is used by the insights layer as an auxiliary view of
social engagement and by the synthetic social-activity generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from ..models import Reaction, ReactionKind, SocialPost


@dataclass
class Cascade:
    """Diffusion cascade for one article: a forest of posts and reactions."""

    article_url: str
    graph: nx.DiGraph
    roots: list[str]

    @property
    def size(self) -> int:
        """Total number of nodes (posts + reactions) in the cascade."""
        return self.graph.number_of_nodes()


def build_cascade(
    article_url: str,
    posts: Sequence[SocialPost],
    reactions: Iterable[Reaction] = (),
) -> Cascade:
    """Build the diffusion cascade of ``article_url``.

    Edges point from a parent node to the posts/reactions it triggered.
    Posts with a ``reply_to`` pointing to another known post become children of
    that post; reactions hang off the post they react to.
    """
    graph = nx.DiGraph()
    relevant = [p for p in posts if p.article_url == article_url]
    known_ids = {p.post_id for p in relevant}

    for post in relevant:
        graph.add_node(post.post_id, kind="post", created_at=post.created_at)
    for post in relevant:
        if post.reply_to and post.reply_to in known_ids:
            graph.add_edge(post.reply_to, post.post_id)

    for reaction in reactions:
        if reaction.post_id in known_ids:
            graph.add_node(
                reaction.reaction_id,
                kind=f"reaction:{reaction.kind.value}",
                created_at=reaction.created_at,
            )
            graph.add_edge(reaction.post_id, reaction.reaction_id)

    roots = [
        post.post_id
        for post in relevant
        if not post.reply_to or post.reply_to not in known_ids
    ]
    return Cascade(article_url=article_url, graph=graph, roots=roots)


def _depth_from(graph: nx.DiGraph, root: str) -> int:
    lengths = nx.single_source_shortest_path_length(graph, root)
    return max(lengths.values(), default=0)


def cascade_metrics(cascade: Cascade) -> dict[str, float]:
    """Structural metrics of a cascade.

    Returns size, depth (longest root-to-leaf path), breadth (largest number
    of nodes at any depth level), number of roots and the structural virality
    proxy (mean pairwise distance within the largest weakly connected
    component, 0 for trivial cascades).
    """
    graph = cascade.graph
    if graph.number_of_nodes() == 0:
        return {"size": 0.0, "depth": 0.0, "breadth": 0.0, "roots": 0.0, "virality": 0.0}

    depth = max((_depth_from(graph, root) for root in cascade.roots), default=0)

    level_counts: dict[int, int] = {}
    for root in cascade.roots:
        for node, distance in nx.single_source_shortest_path_length(graph, root).items():
            level_counts[distance] = level_counts.get(distance, 0) + 1
    breadth = max(level_counts.values(), default=0)

    undirected = graph.to_undirected()
    components = list(nx.connected_components(undirected))
    largest = max(components, key=len) if components else set()
    if len(largest) > 2:
        subgraph = undirected.subgraph(largest)
        virality = nx.average_shortest_path_length(subgraph)
    else:
        virality = 0.0

    return {
        "size": float(graph.number_of_nodes()),
        "depth": float(depth),
        "breadth": float(breadth),
        "roots": float(len(cascade.roots)),
        "virality": float(virality),
    }


def share_reactions(reactions: Iterable[Reaction]) -> list[Reaction]:
    """Filter reactions down to the amplifying kinds (shares and quotes)."""
    return [r for r in reactions if r.kind in (ReactionKind.SHARE, ReactionKind.QUOTE)]
