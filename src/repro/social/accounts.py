"""Social-media accounts tracked by the streaming pipeline.

The Datastreamer-based ingestion of the paper follows "a specific set of
social media accounts"; the :class:`AccountRegistry` is that set, mapping
account handles to outlets so incoming postings can be attributed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import ValidationError


@dataclass(frozen=True)
class SocialAccount:
    """One tracked social-media account."""

    handle: str
    platform: str
    outlet_domain: str | None = None
    followers: int = 0
    verified: bool = False

    def __post_init__(self) -> None:
        if not self.handle:
            raise ValidationError("account handle must be non-empty")
        if self.followers < 0:
            raise ValidationError("followers must be non-negative")

    @property
    def is_outlet_account(self) -> bool:
        """True when the account belongs to a tracked news outlet."""
        return self.outlet_domain is not None


class AccountRegistry:
    """Registry of the accounts the streaming pipeline listens to."""

    def __init__(self, accounts: Iterable[SocialAccount] = ()) -> None:
        self._by_handle: dict[str, SocialAccount] = {}
        for account in accounts:
            self.add(account)

    def __len__(self) -> int:
        return len(self._by_handle)

    def __iter__(self) -> Iterator[SocialAccount]:
        return iter(sorted(self._by_handle.values(), key=lambda a: a.handle))

    def __contains__(self, handle: str) -> bool:
        return handle.lower() in self._by_handle

    def add(self, account: SocialAccount) -> None:
        """Add or replace an account (handles are case-insensitive)."""
        self._by_handle[account.handle.lower()] = account

    def get(self, handle: str) -> SocialAccount | None:
        """Look up an account by handle; ``None`` if untracked."""
        return self._by_handle.get(handle.lower())

    def outlet_for(self, handle: str) -> str | None:
        """Return the outlet domain of the account, if it is an outlet account."""
        account = self.get(handle)
        return account.outlet_domain if account else None

    def accounts_of_outlet(self, outlet_domain: str) -> list[SocialAccount]:
        """All accounts attributed to ``outlet_domain``."""
        return [
            account
            for account in self
            if account.outlet_domain == outlet_domain
        ]

    def followers_of(self, handle: str) -> int:
        """Follower count of ``handle`` (0 for unknown accounts)."""
        account = self.get(handle)
        return account.followers if account else 0
