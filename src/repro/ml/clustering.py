"""Probabilistic hierarchical topic clustering.

The analytics layer "performs a probabilistic hierarchical clustering on the
articles and assigns one or more topics to each one of them", producing topics
that range from generic (Health) to specific (COVID-19).

The model here is a divisive hierarchy of soft spherical k-means clusters over
TF-IDF vectors: the corpus is split into ``branching`` clusters, each cluster
is recursively split again up to ``depth`` levels, and every article receives
a probability for every node in the tree (probabilities of a node's children
sum to the parent's probability).  An article is *assigned* every topic whose
probability exceeds ``min_probability`` — hence "one or more topics".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ModelError, NotFittedError
from .vectorize import TfidfVectorizer, top_terms


@dataclass
class TopicNode:
    """A node in the topic hierarchy."""

    topic_id: str
    level: int
    centroid: np.ndarray
    label: str
    parent_id: str | None = None
    children: list["TopicNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def descendants(self) -> list["TopicNode"]:
        """All nodes in the subtree rooted at this node (excluding itself)."""
        out: list[TopicNode] = []
        stack = list(self.children)
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return out


@dataclass(frozen=True)
class TopicAssignment:
    """Topics assigned to one document with their probabilities."""

    document_index: int
    probabilities: dict[str, float]
    assigned: tuple[str, ...]

    def top_topic(self) -> str | None:
        """Most probable non-root topic (``None`` if the document has none)."""
        candidates = {t: p for t, p in self.probabilities.items() if t != "root"}
        if not candidates:
            return None
        return max(candidates.items(), key=lambda kv: kv[1])[0]


def _normalise_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms


def _soft_kmeans(
    matrix: np.ndarray,
    k: int,
    rng: np.random.Generator,
    n_iterations: int = 25,
    temperature: float = 10.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Soft spherical k-means; returns (centroids, responsibilities)."""
    n = matrix.shape[0]
    k = min(k, n)
    if k <= 1:
        centroid = matrix.mean(axis=0, keepdims=True)
        return _normalise_rows(centroid), np.ones((n, 1))

    seeds = rng.choice(n, size=k, replace=False)
    centroids = _normalise_rows(matrix[seeds].copy())

    responsibilities = np.full((n, k), 1.0 / k)
    for _ in range(n_iterations):
        similarity = matrix @ centroids.T            # cosine similarity (rows normed)
        logits = temperature * similarity
        logits -= logits.max(axis=1, keepdims=True)
        weights = np.exp(logits)
        responsibilities = weights / weights.sum(axis=1, keepdims=True)

        new_centroids = responsibilities.T @ matrix
        norms = np.linalg.norm(new_centroids, axis=1, keepdims=True)
        empty = norms[:, 0] == 0.0
        if np.any(empty):
            reseed = rng.choice(n, size=int(empty.sum()), replace=True)
            new_centroids[empty] = matrix[reseed]
            norms = np.linalg.norm(new_centroids, axis=1, keepdims=True)
        centroids = new_centroids / norms
    return centroids, responsibilities


class HierarchicalTopicModel:
    """Divisive probabilistic hierarchical clustering over raw documents."""

    def __init__(
        self,
        depth: int = 2,
        branching: int = 4,
        min_probability: float = 0.2,
        min_cluster_size: int = 3,
        label_terms: int = 3,
        random_seed: int = 13,
        vectorizer: TfidfVectorizer | None = None,
    ) -> None:
        if depth < 1:
            raise ModelError("depth must be >= 1")
        if branching < 2:
            raise ModelError("branching must be >= 2")
        if not 0.0 <= min_probability <= 1.0:
            raise ModelError("min_probability must be in [0, 1]")
        self.depth = depth
        self.branching = branching
        self.min_probability = min_probability
        self.min_cluster_size = min_cluster_size
        self.label_terms = label_terms
        self.random_seed = random_seed
        self.vectorizer = vectorizer or TfidfVectorizer(min_count=2)
        self.root_: TopicNode | None = None

    # ------------------------------------------------------------------ fit

    def fit(self, documents: Sequence[str]) -> "HierarchicalTopicModel":
        """Build the topic tree from ``documents``."""
        docs = list(documents)
        if not docs:
            raise ModelError("cannot fit a topic model on an empty corpus")
        matrix = _normalise_rows(self.vectorizer.fit_transform(docs))
        rng = np.random.default_rng(self.random_seed)

        root_centroid = _normalise_rows(matrix.mean(axis=0, keepdims=True))[0]
        self.root_ = TopicNode(
            topic_id="root", level=0, centroid=root_centroid, label="root"
        )
        self._split(self.root_, matrix, np.arange(matrix.shape[0]), rng)
        return self

    def _label_for(self, centroid: np.ndarray) -> str:
        names = self.vectorizer.feature_names
        terms = top_terms(centroid, names, k=self.label_terms)
        return "/".join(term for term, _ in terms) if terms else "misc"

    def _split(
        self,
        parent: TopicNode,
        matrix: np.ndarray,
        indices: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        if parent.level >= self.depth or len(indices) < self.min_cluster_size * 2:
            return
        sub = matrix[indices]
        centroids, responsibilities = _soft_kmeans(sub, self.branching, rng)
        hard = responsibilities.argmax(axis=1)

        for cluster in range(centroids.shape[0]):
            members = indices[hard == cluster]
            if len(members) < self.min_cluster_size:
                continue
            node = TopicNode(
                topic_id=f"{parent.topic_id}.{cluster}",
                level=parent.level + 1,
                centroid=centroids[cluster],
                label=self._label_for(centroids[cluster]),
                parent_id=parent.topic_id,
            )
            parent.children.append(node)
            self._split(node, matrix, members, rng)

    # ------------------------------------------------------------- inference

    def _node_probabilities(self, vector: np.ndarray, node: TopicNode, mass: float,
                            out: dict[str, float], temperature: float = 10.0) -> None:
        out[node.topic_id] = mass
        if not node.children:
            return
        sims = np.array([float(vector @ child.centroid) for child in node.children])
        logits = temperature * sims
        logits -= logits.max()
        weights = np.exp(logits)
        weights /= weights.sum()
        for child, weight in zip(node.children, weights):
            self._node_probabilities(vector, child, mass * float(weight), out, temperature)

    def assign(self, documents: Sequence[str]) -> list[TopicAssignment]:
        """Assign topics (with probabilities) to each document."""
        if self.root_ is None:
            raise NotFittedError("HierarchicalTopicModel must be fitted first")
        docs = list(documents)
        matrix = _normalise_rows(self.vectorizer.transform(docs))
        assignments: list[TopicAssignment] = []
        for index, vector in enumerate(matrix):
            probabilities: dict[str, float] = {}
            self._node_probabilities(vector, self.root_, 1.0, probabilities)
            assigned = tuple(
                sorted(
                    topic
                    for topic, probability in probabilities.items()
                    if topic != "root" and probability >= self.min_probability
                )
            )
            assignments.append(
                TopicAssignment(
                    document_index=index,
                    probabilities=probabilities,
                    assigned=assigned,
                )
            )
        return assignments

    def nodes(self) -> list[TopicNode]:
        """All nodes of the fitted tree (root first, breadth-first)."""
        if self.root_ is None:
            raise NotFittedError("HierarchicalTopicModel must be fitted first")
        out: list[TopicNode] = []
        queue = [self.root_]
        while queue:
            node = queue.pop(0)
            out.append(node)
            queue.extend(node.children)
        return out

    def topic_labels(self) -> dict[str, str]:
        """Mapping of topic id → human-readable label."""
        return {node.topic_id: node.label for node in self.nodes()}
