"""Text vectorisers: bag-of-words counts and TF-IDF.

Both vectorisers follow the familiar ``fit`` / ``transform`` protocol and
produce dense numpy arrays (the corpora handled by the platform's analytics
jobs are small enough that dense storage is the simpler, faster choice).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from ..errors import NotFittedError
from ..nlp.features import bag_of_words


class CountVectorizer:
    """Bag-of-words vectoriser over a learned vocabulary.

    Parameters
    ----------
    min_count:
        Minimum total corpus frequency for a token to enter the vocabulary.
    ngram_range:
        Inclusive ``(lo, hi)`` n-gram sizes.
    drop_stopwords:
        Whether to remove stop words before counting.
    max_features:
        Optional cap on vocabulary size; the most frequent tokens are kept.
    """

    def __init__(
        self,
        min_count: int = 1,
        ngram_range: tuple[int, int] = (1, 1),
        drop_stopwords: bool = True,
        max_features: int | None = None,
    ) -> None:
        self.min_count = min_count
        self.ngram_range = ngram_range
        self.drop_stopwords = drop_stopwords
        self.max_features = max_features
        self.vocabulary_: dict[str, int] | None = None

    def _document_counts(self, text: str) -> Counter[str]:
        return bag_of_words(
            text,
            drop_stopwords=self.drop_stopwords,
            ngram_range=self.ngram_range,
        )

    def fit(self, documents: Sequence[str]) -> "CountVectorizer":
        """Learn the vocabulary from ``documents``."""
        totals: Counter[str] = Counter()
        for document in documents:
            totals.update(self._document_counts(document))
        items = [(tok, cnt) for tok, cnt in totals.items() if cnt >= self.min_count]
        # Most frequent first; ties broken alphabetically for determinism.
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        if self.max_features is not None:
            items = items[: self.max_features]
        tokens = sorted(tok for tok, _ in items)
        self.vocabulary_ = {tok: idx for idx, tok in enumerate(tokens)}
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Vectorise ``documents`` into a ``(n_docs, n_vocab)`` count matrix."""
        if self.vocabulary_ is None:
            raise NotFittedError("CountVectorizer must be fitted before transform")
        matrix = np.zeros((len(documents), len(self.vocabulary_)), dtype=np.float64)
        for row, document in enumerate(documents):
            for token, count in self._document_counts(document).items():
                index = self.vocabulary_.get(token)
                if index is not None:
                    matrix[row, index] = count
        return matrix

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Fit the vocabulary and vectorise ``documents`` in one call."""
        return self.fit(documents).transform(documents)

    @property
    def feature_names(self) -> list[str]:
        """Vocabulary tokens ordered by their column index."""
        if self.vocabulary_ is None:
            raise NotFittedError("CountVectorizer must be fitted first")
        return [tok for tok, _ in sorted(self.vocabulary_.items(), key=lambda kv: kv[1])]


class TfidfVectorizer(CountVectorizer):
    """TF-IDF vectoriser built on :class:`CountVectorizer`.

    Uses smoothed inverse document frequency
    ``idf = ln((1 + n) / (1 + df)) + 1`` and L2-normalises each row.
    """

    def __init__(
        self,
        min_count: int = 1,
        ngram_range: tuple[int, int] = (1, 1),
        drop_stopwords: bool = True,
        max_features: int | None = None,
        sublinear_tf: bool = False,
    ) -> None:
        super().__init__(
            min_count=min_count,
            ngram_range=ngram_range,
            drop_stopwords=drop_stopwords,
            max_features=max_features,
        )
        self.sublinear_tf = sublinear_tf
        self.idf_: np.ndarray | None = None

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn vocabulary and IDF weights from ``documents``."""
        super().fit(documents)
        assert self.vocabulary_ is not None
        df = np.zeros(len(self.vocabulary_), dtype=np.float64)
        for document in documents:
            seen = set(self._document_counts(document)) & set(self.vocabulary_)
            for token in seen:
                df[self.vocabulary_[token]] += 1
        n_docs = max(1, len(documents))
        self.idf_ = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Vectorise ``documents`` into an L2-normalised TF-IDF matrix."""
        if self.idf_ is None:
            raise NotFittedError("TfidfVectorizer must be fitted before transform")
        counts = super().transform(documents)
        if self.sublinear_tf:
            counts = np.where(counts > 0, 1.0 + np.log(counts, where=counts > 0), 0.0)
        weighted = counts * self.idf_
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return weighted / norms


def top_terms(
    vector: np.ndarray, feature_names: Sequence[str], k: int = 10
) -> list[tuple[str, float]]:
    """Return the ``k`` highest-weighted ``(term, weight)`` pairs of ``vector``."""
    if len(vector) != len(feature_names):
        raise ValueError("vector length does not match feature names")
    order = np.argsort(vector)[::-1][:k]
    return [(feature_names[i], float(vector[i])) for i in order if vector[i] > 0]


def corpus_matrix(
    documents: Iterable[str], vectorizer: CountVectorizer | None = None
) -> tuple[np.ndarray, CountVectorizer]:
    """Convenience helper: fit (or reuse) a vectoriser and return the matrix."""
    docs = list(documents)
    vec = vectorizer or TfidfVectorizer()
    if getattr(vec, "vocabulary_", None) is None:
        matrix = vec.fit_transform(docs)
    else:
        matrix = vec.transform(docs)
    return matrix, vec
