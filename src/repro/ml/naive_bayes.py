"""Multinomial Naive Bayes and a text-classification pipeline.

Used by the platform for the periodically retrained title (click-bait) and
stance models.  The implementation is a standard multinomial NB with Laplace
smoothing over count/TF-IDF features.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError, NotFittedError
from .vectorize import CountVectorizer


class MultinomialNaiveBayes:
    """Multinomial Naive Bayes over non-negative feature matrices."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ModelError("alpha must be positive")
        self.alpha = alpha
        self.classes_: list[object] | None = None
        self.class_log_prior_: np.ndarray | None = None
        self.feature_log_prob_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: Sequence[object]) -> "MultinomialNaiveBayes":
        """Fit class priors and per-class feature likelihoods."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be a 2-D matrix")
        if X.shape[0] != len(y):
            raise ModelError("X and y have different lengths")
        if np.any(X < 0):
            raise ModelError("MultinomialNaiveBayes requires non-negative features")

        labels = list(y)
        self.classes_ = sorted(set(labels), key=repr)
        n_classes = len(self.classes_)
        n_features = X.shape[1]

        class_counts = np.zeros(n_classes, dtype=np.float64)
        feature_counts = np.zeros((n_classes, n_features), dtype=np.float64)
        index_of = {cls: i for i, cls in enumerate(self.classes_)}
        for row, label in enumerate(labels):
            idx = index_of[label]
            class_counts[idx] += 1
            feature_counts[idx] += X[row]

        self.class_log_prior_ = np.log(class_counts / class_counts.sum())
        smoothed = feature_counts + self.alpha
        self.feature_log_prob_ = np.log(smoothed / smoothed.sum(axis=1, keepdims=True))
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        if self.feature_log_prob_ is None or self.class_log_prior_ is None:
            raise NotFittedError("MultinomialNaiveBayes must be fitted first")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.feature_log_prob_.T + self.class_log_prior_

    def predict_log_proba(self, X: np.ndarray) -> np.ndarray:
        """Log posterior probabilities, shape ``(n_samples, n_classes)``."""
        jll = self._joint_log_likelihood(X)
        log_norm = np.logaddexp.reduce(jll, axis=1, keepdims=True)
        return jll - log_norm

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior probabilities, shape ``(n_samples, n_classes)``."""
        return np.exp(self.predict_log_proba(X))

    def predict(self, X: np.ndarray) -> list[object]:
        """Most probable class per sample."""
        assert self.classes_ is not None or self._joint_log_likelihood(X) is not None
        jll = self._joint_log_likelihood(X)
        indices = np.argmax(jll, axis=1)
        assert self.classes_ is not None
        return [self.classes_[i] for i in indices]


class TextClassifier:
    """Vectoriser + Naive Bayes pipeline operating directly on raw strings.

    ``positive_class`` controls which class :meth:`predict_proba` reports the
    probability of (defaults to the lexicographically largest class, i.e.
    ``True`` / ``1`` for boolean/int labels).
    """

    def __init__(
        self,
        vectorizer: CountVectorizer | None = None,
        alpha: float = 1.0,
        positive_class: object | None = None,
    ) -> None:
        self.vectorizer = vectorizer or CountVectorizer()
        self.model = MultinomialNaiveBayes(alpha=alpha)
        self.positive_class = positive_class

    def fit(self, texts: Sequence[str], labels: Sequence[object]) -> "TextClassifier":
        """Fit the vocabulary and the NB model on labelled texts."""
        X = self.vectorizer.fit_transform(list(texts))
        self.model.fit(X, list(labels))
        if self.positive_class is None and self.model.classes_:
            self.positive_class = self.model.classes_[-1]
        return self

    def predict(self, texts: Sequence[str]) -> list[object]:
        """Predict a label for each text."""
        X = self.vectorizer.transform(list(texts))
        return self.model.predict(X)

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """Probability of the positive class for each text."""
        X = self.vectorizer.transform(list(texts))
        proba = self.model.predict_proba(X)
        assert self.model.classes_ is not None
        try:
            column = self.model.classes_.index(self.positive_class)
        except ValueError as exc:
            raise ModelError(
                f"positive_class {self.positive_class!r} not among fitted classes"
            ) from exc
        return proba[:, column]
