"""Binary logistic regression trained with full-batch gradient descent.

Used by the indicator-fusion ablation (how well indicator families separate
low- from high-quality outlets) and available as an alternative click-bait /
stance model for the periodic training job.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError, NotFittedError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class LogisticRegression:
    """L2-regularised binary logistic regression.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    n_iterations:
        Number of full-batch iterations.
    l2:
        L2 regularisation strength (0 disables it).
    fit_intercept:
        Whether to learn an intercept term.
    standardize:
        Whether to z-score features before fitting (statistics are stored and
        re-applied at prediction time).
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iterations: int = 500,
        l2: float = 0.0,
        fit_intercept: bool = True,
        standardize: bool = True,
    ) -> None:
        if learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        if n_iterations < 1:
            raise ModelError("n_iterations must be >= 1")
        if l2 < 0:
            raise ModelError("l2 must be non-negative")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.fit_intercept = fit_intercept
        self.standardize = standardize
        self.weights_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.classes_: list[object] | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def _prepare(self, X: np.ndarray, fitting: bool) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError("X must be a 2-D matrix")
        if not self.standardize:
            return X
        if fitting:
            self._mean = X.mean(axis=0)
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self._std = std
        assert self._mean is not None and self._std is not None
        return (X - self._mean) / self._std

    def fit(self, X: np.ndarray, y: Sequence[object]) -> "LogisticRegression":
        """Fit on feature matrix ``X`` and binary labels ``y``."""
        labels = list(y)
        unique = sorted(set(labels), key=repr)
        if len(unique) != 2:
            raise ModelError(
                f"LogisticRegression is binary; got {len(unique)} classes"
            )
        self.classes_ = unique
        target = np.array([1.0 if label == unique[1] else 0.0 for label in labels])

        Xp = self._prepare(X, fitting=True)
        if Xp.shape[0] != len(labels):
            raise ModelError("X and y have different lengths")

        n_samples, n_features = Xp.shape
        weights = np.zeros(n_features, dtype=np.float64)
        intercept = 0.0

        for _ in range(self.n_iterations):
            logits = Xp @ weights + intercept
            probs = _sigmoid(logits)
            error = probs - target
            grad_w = (Xp.T @ error) / n_samples + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            if self.fit_intercept:
                intercept -= self.learning_rate * grad_b

        self.weights_ = weights
        self.intercept_ = intercept
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw logits for each sample."""
        if self.weights_ is None:
            raise NotFittedError("LogisticRegression must be fitted first")
        Xp = self._prepare(X, fitting=False)
        return Xp @ self.weights_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive (second) class for each sample."""
        return _sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray) -> list[object]:
        """Predicted class label for each sample."""
        if self.classes_ is None:
            raise NotFittedError("LogisticRegression must be fitted first")
        probs = self.predict_proba(X)
        return [self.classes_[1] if p >= 0.5 else self.classes_[0] for p in probs]
