"""Machine-learning substrate.

The SciLens platform "periodically trains Machine Learning models on top of
the Distributed Storage" and uses them to extract quality indicators and
topic segments.  This package provides the from-scratch building blocks:
vectorisers, classifiers, probabilistic hierarchical topic clustering, kernel
density estimation, evaluation metrics, model selection and a model registry.
"""

from .vectorize import CountVectorizer, TfidfVectorizer
from .naive_bayes import MultinomialNaiveBayes, TextClassifier
from .logistic import LogisticRegression
from .kde import GaussianKDE
from .clustering import TopicNode, HierarchicalTopicModel, TopicAssignment
from .metrics import (
    accuracy_score,
    precision_score,
    recall_score,
    f1_score,
    confusion_matrix,
    roc_auc_score,
)
from .model_selection import train_test_split, k_fold_indices, cross_validate
from .registry import ModelRegistry, ModelRecord

__all__ = [
    "CountVectorizer",
    "TfidfVectorizer",
    "MultinomialNaiveBayes",
    "TextClassifier",
    "LogisticRegression",
    "GaussianKDE",
    "TopicNode",
    "HierarchicalTopicModel",
    "TopicAssignment",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "roc_auc_score",
    "train_test_split",
    "k_fold_indices",
    "cross_validate",
    "ModelRegistry",
    "ModelRecord",
]
