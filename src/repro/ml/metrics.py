"""Classification metrics used by tests, ablations and the training jobs."""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..errors import ModelError


def _check_lengths(y_true: Sequence, y_pred: Sequence) -> None:
    if len(y_true) != len(y_pred):
        raise ModelError("y_true and y_pred must have the same length")
    if len(y_true) == 0:
        raise ModelError("metrics require at least one sample")


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exactly matching predictions."""
    _check_lengths(y_true, y_pred)
    correct = sum(1 for t, p in zip(y_true, y_pred) if t == p)
    return correct / len(y_true)


def _binary_counts(
    y_true: Sequence, y_pred: Sequence, positive: Hashable
) -> tuple[int, int, int, int]:
    tp = fp = tn = fn = 0
    for t, p in zip(y_true, y_pred):
        if p == positive and t == positive:
            tp += 1
        elif p == positive:
            fp += 1
        elif t == positive:
            fn += 1
        else:
            tn += 1
    return tp, fp, tn, fn


def precision_score(y_true: Sequence, y_pred: Sequence, positive: Hashable = 1) -> float:
    """Precision of the ``positive`` class (0 when nothing is predicted positive)."""
    _check_lengths(y_true, y_pred)
    tp, fp, _, _ = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if (tp + fp) else 0.0


def recall_score(y_true: Sequence, y_pred: Sequence, positive: Hashable = 1) -> float:
    """Recall of the ``positive`` class (0 when there are no positive samples)."""
    _check_lengths(y_true, y_pred)
    tp, _, _, fn = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if (tp + fn) else 0.0


def f1_score(y_true: Sequence, y_pred: Sequence, positive: Hashable = 1) -> float:
    """Harmonic mean of precision and recall for the ``positive`` class."""
    precision = precision_score(y_true, y_pred, positive)
    recall = recall_score(y_true, y_pred, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Sequence[Hashable] | None = None
) -> tuple[list[Hashable], np.ndarray]:
    """Return ``(labels, matrix)`` where ``matrix[i, j]`` counts true=i, pred=j."""
    _check_lengths(y_true, y_pred)
    if labels is None:
        labels = sorted(set(y_true) | set(y_pred), key=repr)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return list(labels), matrix


def roc_auc_score(y_true: Sequence, scores: Sequence[float], positive: Hashable = 1) -> float:
    """Area under the ROC curve via the rank (Mann-Whitney U) formulation.

    Ties in scores receive mid-ranks.  Requires both classes to be present.
    """
    _check_lengths(y_true, scores)
    scores = np.asarray(list(scores), dtype=np.float64)
    positives = np.array([t == positive for t in y_true])
    n_pos = int(positives.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ModelError("roc_auc_score requires both classes to be present")

    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1

    sum_pos_ranks = float(ranks[positives].sum())
    u_statistic = sum_pos_ranks - n_pos * (n_pos + 1) / 2.0
    return u_statistic / (n_pos * n_neg)
