"""Model registry.

The platform periodically retrains its models over the full warehouse history;
the registry is where each training run registers the resulting model version,
and where the Indicators API looks up the latest model of each kind.  Models
can be kept purely in memory or persisted to disk with :mod:`pickle`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Any

from ..errors import ModelError


@dataclass(frozen=True)
class ModelRecord:
    """Metadata about one registered model version."""

    name: str
    version: int
    trained_at: datetime
    metrics: dict[str, float] = field(default_factory=dict)
    path: Path | None = None


class ModelRegistry:
    """Versioned store of trained models.

    Parameters
    ----------
    directory:
        Optional directory; when given, every registered model is pickled to
        ``<directory>/<name>-v<version>.pkl`` and can be reloaded later.
    """

    def __init__(self, directory: Path | str | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._models: dict[str, dict[int, Any]] = {}
        self._records: dict[str, dict[int, ModelRecord]] = {}

    def register(
        self,
        name: str,
        model: Any,
        trained_at: datetime | None = None,
        metrics: dict[str, float] | None = None,
    ) -> ModelRecord:
        """Register a new version of ``name`` and return its record."""
        versions = self._models.setdefault(name, {})
        records = self._records.setdefault(name, {})
        version = max(versions) + 1 if versions else 1

        path: Path | None = None
        if self.directory is not None:
            path = self.directory / f"{name}-v{version}.pkl"
            with path.open("wb") as handle:
                pickle.dump(model, handle)

        record = ModelRecord(
            name=name,
            version=version,
            trained_at=trained_at or datetime.utcnow(),
            metrics=dict(metrics or {}),
            path=path,
        )
        versions[version] = model
        records[version] = record
        return record

    def latest_version(self, name: str) -> int:
        """Highest registered version number of ``name``."""
        versions = self._models.get(name)
        if not versions:
            raise ModelError(f"no model registered under name {name!r}")
        return max(versions)

    def get(self, name: str, version: int | None = None) -> Any:
        """Return a registered model (latest version by default)."""
        versions = self._models.get(name)
        if not versions:
            raise ModelError(f"no model registered under name {name!r}")
        version = version if version is not None else max(versions)
        if version not in versions:
            raise ModelError(f"model {name!r} has no version {version}")
        return versions[version]

    def record(self, name: str, version: int | None = None) -> ModelRecord:
        """Return the metadata record of a registered model."""
        records = self._records.get(name)
        if not records:
            raise ModelError(f"no model registered under name {name!r}")
        version = version if version is not None else max(records)
        if version not in records:
            raise ModelError(f"model {name!r} has no version {version}")
        return records[version]

    def names(self) -> list[str]:
        """All registered model names."""
        return sorted(self._models)

    def history(self, name: str) -> list[ModelRecord]:
        """All records of ``name``, oldest first."""
        records = self._records.get(name)
        if not records:
            raise ModelError(f"no model registered under name {name!r}")
        return [records[v] for v in sorted(records)]

    def load_from_disk(self, name: str, version: int) -> Any:
        """Reload a pickled model from the registry directory."""
        if self.directory is None:
            raise ModelError("registry has no persistence directory")
        path = self.directory / f"{name}-v{version}.pkl"
        if not path.exists():
            raise ModelError(f"no persisted model at {path}")
        with path.open("rb") as handle:
            model = pickle.load(handle)
        self._models.setdefault(name, {})[version] = model
        return model
