"""One-dimensional Gaussian kernel density estimation.

Figure 5 of the paper shows KDE plots of (left) the number of social-media
reactions and (right) the scientific-references ratio, split by outlet quality
class.  :class:`GaussianKDE` reproduces those curves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError


class GaussianKDE:
    """Gaussian kernel density estimator for 1-D samples.

    Parameters
    ----------
    bandwidth:
        Kernel bandwidth.  ``"scott"`` and ``"silverman"`` select the
        corresponding rule of thumb; a positive float fixes it explicitly.
    """

    def __init__(self, samples: Sequence[float], bandwidth: str | float = "scott") -> None:
        data = np.asarray(list(samples), dtype=np.float64)
        if data.ndim != 1 or data.size == 0:
            raise ModelError("GaussianKDE requires a non-empty 1-D sample")
        self.samples = data
        self.bandwidth = self._resolve_bandwidth(bandwidth)

    def _resolve_bandwidth(self, bandwidth: str | float) -> float:
        n = self.samples.size
        std = float(self.samples.std())
        iqr = float(np.subtract(*np.percentile(self.samples, [75, 25])))
        spread = min(std, iqr / 1.34) if iqr > 0 else std
        if spread == 0.0:
            spread = max(abs(float(self.samples.mean())), 1.0) * 0.01

        if isinstance(bandwidth, (int, float)):
            if bandwidth <= 0:
                raise ModelError("bandwidth must be positive")
            return float(bandwidth)
        if bandwidth == "scott":
            return 1.06 * spread * n ** (-1.0 / 5.0)
        if bandwidth == "silverman":
            return 0.9 * spread * n ** (-1.0 / 5.0)
        raise ModelError(f"unknown bandwidth rule: {bandwidth!r}")

    def evaluate(self, points: Sequence[float]) -> np.ndarray:
        """Evaluate the estimated density at ``points``."""
        grid = np.asarray(list(points), dtype=np.float64)
        diffs = (grid[:, None] - self.samples[None, :]) / self.bandwidth
        kernel = np.exp(-0.5 * diffs ** 2) / np.sqrt(2.0 * np.pi)
        return kernel.sum(axis=1) / (self.samples.size * self.bandwidth)

    def __call__(self, points: Sequence[float]) -> np.ndarray:
        return self.evaluate(points)

    def grid(self, n_points: int = 200, padding: float = 3.0) -> np.ndarray:
        """Return an evaluation grid spanning the sample range ± ``padding`` bandwidths."""
        lo = float(self.samples.min()) - padding * self.bandwidth
        hi = float(self.samples.max()) + padding * self.bandwidth
        return np.linspace(lo, hi, n_points)

    def curve(self, n_points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(grid, density)`` arrays ready for plotting/reporting."""
        xs = self.grid(n_points)
        return xs, self.evaluate(xs)

    def mode(self, n_points: int = 400) -> float:
        """Location of the highest estimated density."""
        xs, density = self.curve(n_points)
        return float(xs[int(np.argmax(density))])

    def integrate(self, n_points: int = 1000) -> float:
        """Numerical integral of the density over the evaluation grid (≈ 1)."""
        xs, density = self.curve(n_points)
        return float(np.trapezoid(density, xs))
