"""Model-selection helpers: deterministic splits and k-fold cross-validation."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from ..errors import ModelError

T = TypeVar("T")
L = TypeVar("L")


def train_test_split(
    samples: Sequence[T],
    labels: Sequence[L],
    test_fraction: float = 0.25,
    random_seed: int = 13,
    shuffle: bool = True,
) -> tuple[list[T], list[T], list[L], list[L]]:
    """Split ``samples``/``labels`` into train and test subsets.

    Returns ``(train_samples, test_samples, train_labels, test_labels)``.
    """
    if len(samples) != len(labels):
        raise ModelError("samples and labels must have the same length")
    if not 0.0 < test_fraction < 1.0:
        raise ModelError("test_fraction must be in (0, 1)")
    n = len(samples)
    if n < 2:
        raise ModelError("need at least two samples to split")

    indices = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(random_seed)
        rng.shuffle(indices)
    n_test = max(1, int(round(n * test_fraction)))
    n_test = min(n_test, n - 1)
    test_idx = set(indices[:n_test].tolist())

    train_samples = [samples[i] for i in range(n) if i not in test_idx]
    test_samples = [samples[i] for i in range(n) if i in test_idx]
    train_labels = [labels[i] for i in range(n) if i not in test_idx]
    test_labels = [labels[i] for i in range(n) if i in test_idx]
    return train_samples, test_samples, train_labels, test_labels


def k_fold_indices(
    n_samples: int, n_folds: int = 5, random_seed: int = 13, shuffle: bool = True
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return a list of ``(train_indices, test_indices)`` pairs for k-fold CV."""
    if n_folds < 2:
        raise ModelError("n_folds must be >= 2")
    if n_samples < n_folds:
        raise ModelError("cannot have more folds than samples")
    indices = np.arange(n_samples)
    if shuffle:
        rng = np.random.default_rng(random_seed)
        rng.shuffle(indices)
    folds = np.array_split(indices, n_folds)
    splits: list[tuple[np.ndarray, np.ndarray]] = []
    for i, test_idx in enumerate(folds):
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        splits.append((train_idx, np.asarray(test_idx)))
    return splits


def cross_validate(
    factory: Callable[[], object],
    samples: Sequence[T],
    labels: Sequence[L],
    scorer: Callable[[Sequence[L], Sequence[L]], float],
    n_folds: int = 5,
    random_seed: int = 13,
) -> list[float]:
    """Run k-fold cross-validation and return the per-fold scores.

    ``factory`` builds a fresh model exposing ``fit(samples, labels)`` and
    ``predict(samples)``; ``scorer`` maps ``(y_true, y_pred)`` to a float.
    """
    if len(samples) != len(labels):
        raise ModelError("samples and labels must have the same length")
    scores: list[float] = []
    for train_idx, test_idx in k_fold_indices(len(samples), n_folds, random_seed):
        model = factory()
        train_x = [samples[i] for i in train_idx]
        train_y = [labels[i] for i in train_idx]
        test_x = [samples[i] for i in test_idx]
        test_y = [labels[i] for i in test_idx]
        model.fit(train_x, train_y)  # type: ignore[attr-defined]
        predictions = model.predict(test_x)  # type: ignore[attr-defined]
        scores.append(scorer(test_y, predictions))
    return scores
