"""EXPLAIN demo: every access path and ordering strategy of the query planner.

Builds a small articles table, declares the indexes the platform uses, and
prints ``Query.explain()`` for one query of each plan shape described in
``docs/query-planner.md`` — including the cost-model outputs: estimated
rows, plan cost, and the alternatives the planner rejected.

Run with::

    PYTHONPATH=src python examples/explain_demo.py
"""

from __future__ import annotations

import json
from datetime import datetime, timedelta

from repro.storage.rdbms.database import Database
from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.types import ColumnType


def build_database(n_articles: int = 500) -> Database:
    database = Database(wal_enabled=False)
    database.create_table(
        TableSchema(
            name="articles",
            primary_key="article_id",
            columns=(
                Column("article_id", ColumnType.TEXT, nullable=False),
                Column("outlet_domain", ColumnType.TEXT, nullable=False),
                Column("published_at", ColumnType.TIMESTAMP, nullable=False),
                Column("reactions", ColumnType.INTEGER, nullable=False),
                Column("title", ColumnType.TEXT, nullable=False),
            ),
        )
    )
    # The same index kinds the platform declares: a hash index for equality
    # lookups, sorted indexes for range scans, ordered streaming, and
    # LIKE-prefix pushdown on text.
    database.create_index("articles", "outlet_domain", kind="hash")
    database.create_index("articles", "published_at", kind="sorted")
    database.create_index("articles", "reactions", kind="sorted")
    database.create_index("articles", "title", kind="sorted")

    start = datetime(2020, 1, 15)
    database.insert_many(
        "articles",
        [
            {
                "article_id": f"a{i}",
                "outlet_domain": f"outlet-{i % 20}.example.com",
                "published_at": start + timedelta(hours=3 * i),
                "reactions": (i * 37) % 1000,
                "title": f"Article {i}",
            }
            for i in range(n_articles)
        ],
    )
    return database


def main() -> None:
    database = build_database()
    week = datetime(2020, 2, 1), datetime(2020, 2, 8)

    demos = {
        "full-scan (no usable index)": (
            database.query("articles").where(lambda row: "7" in row["title"])
        ),
        "full-scan (cost model rejects an unselective index)": (
            database.query("articles").where(col("reactions") >= 10)
        ),
        "index-eq (hash equality)": (
            database.query("articles").where(col("outlet_domain") == "outlet-3.example.com")
        ),
        "index-range (sorted index)": (
            database.query("articles").where(
                (col("published_at") >= week[0]) & (col("published_at") <= week[1])
            )
        ),
        "like-prefix (sorted text index)": (
            database.query("articles").where(col("title").like("Article 4%"))
        ),
        "index-union (IN list)": (
            database.query("articles").where(
                col("outlet_domain").is_in(
                    ["outlet-1.example.com", "outlet-2.example.com"]
                )
            )
        ),
        "index-intersect (two selective conjuncts)": (
            database.query("articles").where(
                (col("outlet_domain") == "outlet-3.example.com")
                & (col("published_at") >= week[0])
                & (col("published_at") <= week[1])
            )
        ),
        "index-ordered (ORDER BY + LIMIT on an indexed column)": (
            database.query("articles").order_by("published_at").limit(5)
        ),
        "top-k (ORDER BY + LIMIT after an index-backed filter)": (
            database.query("articles")
            .where(col("outlet_domain") == "outlet-3.example.com")
            .order_by("reactions", descending=True)
            .limit(3)
        ),
        "projection pushdown (SELECT few columns)": (
            database.query("articles")
            .select("article_id", "title")
            .where(col("reactions") >= 900)
        ),
        "aggregation (GROUP BY + count)": (
            database.query("articles")
            .group_by("outlet_domain")
            .aggregate(articles=("count", "*"))
        ),
    }

    width = max(len(label) for label in demos)
    print("=== Query.explain() — one query per plan shape ===\n")
    for label, query in demos.items():
        plan = query.explain()
        print(f"{label:<{width}}  ->  {plan.describe()}")
        rows = query.execute().rows
        print(f"{'':<{width}}      ({len(rows)} row(s) when executed)\n")

    print("=== Query.explain().describe_verbose() — the rejected alternatives ===\n")
    verbose_query = database.query("articles").where(
        (col("outlet_domain") == "outlet-3.example.com") & (col("reactions") >= 10)
    )
    print(verbose_query.explain().describe_verbose())
    print()

    print("=== Database.planner_status() — plan counters + statistics health ===\n")
    database.analyze()
    status = database.planner_status()
    print(json.dumps(status, indent=2, sort_keys=True, default=str))


if __name__ == "__main__":
    main()
