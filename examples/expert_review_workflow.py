"""Expert-review workflow through the Indicators API (§3.2).

Domain experts annotate articles on the seven Likert criteria through the
reviews micro-service; the platform combines their annotations into a
weighted, time-sensitive average, fuses it with the automated indicators, and
the example finally quantifies how much the augmented view improves consensus
among simulated non-expert assessors (the claim of §1).

Run with::

    python examples/expert_review_workflow.py
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np

from repro import PlatformConfig, SciLensPlatform, build_gateway
from repro.experts.consensus import consensus_report
from repro.experts.criteria import CRITERIA
from repro.simulation import CovidScenarioConfig, generate_covid_scenario


def main() -> None:
    scenario = generate_covid_scenario(CovidScenarioConfig.small(n_outlets=8, n_days=20, random_seed=21))
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=scenario.site_store,
        account_registry=scenario.outlets.account_registry(),
    )
    platform.register_outlets(scenario.outlets.outlets())
    platform.ingest_posting_events(scenario.posting_events())
    platform.ingest_reaction_events(scenario.reaction_events())
    platform.process_stream()
    platform.assign_topics()

    gateway = build_gateway(platform)
    rng = np.random.default_rng(4)

    # ----------------------------------------------------------------- reviews
    covid_articles = scenario.topic_articles()[:5]
    print("submitting expert reviews through the reviews micro-service...")
    for generated in covid_articles:
        article = platform.get_article_by_url(generated.url)
        quality = generated.true_quality
        for reviewer_index in range(3):
            likert = int(np.clip(round(1 + quality * 4 + rng.normal(0, 0.5)), 1, 5))
            scores = {criterion: likert for criterion in CRITERIA}
            scores["clickbaitness"] = 6 - likert
            created_at = generated.article.published_at + timedelta(days=1 + reviewer_index)
            response = gateway.handle(
                "reviews.submit",
                {
                    "article_id": article.article_id,
                    "reviewer_id": f"expert-{reviewer_index:02d}",
                    "scores": scores,
                    "comment": "Thorough reporting." if quality > 0.5 else "Overstated claims.",
                    "created_at": created_at.isoformat(),
                },
            )
            assert response.ok, response.error

    # -------------------------------------------------------- combined scoring
    print(f"\n{'article':<46}{'outlet class':<12}{'auto':>7}{'expert':>8}{'final':>8}")
    for generated in covid_articles:
        article = platform.get_article_by_url(generated.url)
        payload = gateway.handle("indicators.evaluate", {"article_id": article.article_id}).payload
        expert = payload["expert"]["expert_overall_quality"] if payload["expert"] else float("nan")
        print(
            f"{payload['title'][:44]:<46}"
            f"{payload['outlet_rating']:<12}"
            f"{payload['indicators']['automated_score']:>7.3f}"
            f"{expert:>8.3f}"
            f"{payload['final_score']:>8.3f}"
        )

    # ------------------------------------------------------ consensus analysis
    # Simulated non-experts assess article quality on the Likert scale, with and
    # without access to the platform's augmented view.  The indicator-informed
    # condition has lower per-assessor noise around the truth, as reported in
    # the user study of the underlying SciLens paper.
    without_indicators: dict[str, list[float]] = {}
    with_indicators: dict[str, list[float]] = {}
    for generated in scenario.topic_articles():
        truth = 1 + generated.true_quality * 4
        without_indicators[generated.article.article_id] = list(
            np.clip(rng.normal(truth, 1.5, size=6), 1, 5)
        )
        with_indicators[generated.article.article_id] = list(
            np.clip(rng.normal(truth, 0.7, size=6), 1, 5)
        )
    report = consensus_report(without_indicators, with_indicators)

    print("\n=== consensus among non-expert assessors (the §1 claim) ===")
    print(f"articles compared               : {report['articles']:.0f}")
    print(f"agreement without indicators    : {report['agreement_without_indicators']:.3f}")
    print(f"agreement with indicators       : {report['agreement_with_indicators']:.3f}")
    print(f"improvement                     : +{report['agreement_improvement']:.3f}")
    print(f"score variance without / with   : {report['variance_without_indicators']:.3f} "
          f"/ {report['variance_with_indicators']:.3f}")


if __name__ == "__main__":
    main()
