"""Single-article assessment (§4.1 / Figure 3): the combined card of automated
quality indicators and expert reviews for one article, rendered as text.

The example also shows the "any arbitrary news article" path: a page that the
platform never ingested is scraped and evaluated on the fly.

Run with::

    python examples/single_article_assessment.py
"""

from __future__ import annotations

from datetime import datetime

from repro import PlatformConfig, SciLensPlatform
from repro.experts.criteria import criterion_definition
from repro.experts.reviewers import ReviewerPool
from repro.simulation import CovidScenarioConfig, generate_covid_scenario


def render_card(assessment) -> None:
    """Render the Figure 3 card as text."""
    payload = assessment.to_payload()
    print("┌" + "─" * 78 + "┐")
    print(f"│ {payload['title'][:76]:<76} │")
    print(f"│ {payload['outlet_domain']:<40} outlet rating: {str(payload['outlet_rating']):<19} │")
    print("├" + "─" * 78 + "┤")
    print(f"│ FINAL SCORE: {payload['final_score']:.3f}  ({payload['final_rating']:<10})"
          + " " * 45 + "│")
    print("│ Automated indicators:" + " " * 56 + "│")
    indicators = payload["indicators"]
    rows = [
        ("click-baitness of the title", indicators["clickbait_score"]),
        ("subjectivity of the body", indicators["subjectivity"]),
        ("readability of the body", indicators["readability"]),
        ("by-lined by its author", indicators["has_byline"]),
        ("internal references", indicators["internal_references"]),
        ("external references", indicators["external_references"]),
        ("scientific references", indicators["scientific_references"]),
        ("scientific references ratio", indicators["scientific_ratio"]),
        ("social-media posts", indicators["n_posts"]),
        ("social-media reactions", indicators["n_reactions"]),
        ("popularity (reach)", indicators["popularity"]),
        ("positive stance", indicators["positive_stance"]),
        ("negative stance", indicators["negative_stance"]),
    ]
    for label, value in rows:
        print(f"│   {label:<34}{value:10.3f}" + " " * 31 + "│")
    print("│ Expert reviews:" + " " * 62 + "│")
    if payload["expert"] is None:
        print("│   (no expert reviews yet)" + " " * 52 + "│")
    else:
        for key, value in sorted(payload["expert"].items()):
            if key.startswith("expert_") and key not in ("expert_overall_quality", "expert_n_reviews"):
                name = criterion_definition(key.removeprefix("expert_")).display_name
                print(f"│   {name:<34}{value:10.2f}" + " " * 31 + "│")
        print(f"│   {'overall expert quality':<34}{payload['expert']['expert_overall_quality']:10.3f}"
              + " " * 31 + "│")
        print(f"│   {'number of reviews':<34}{payload['expert']['expert_n_reviews']:10.0f}"
              + " " * 31 + "│")
    for comment in payload["expert_comments"][:2]:
        print(f"│   “{comment[:70]:<70}”  │")
    print("└" + "─" * 78 + "┘")


def main() -> None:
    scenario = generate_covid_scenario(CovidScenarioConfig.small(n_outlets=8, n_days=20))
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=scenario.site_store,
        account_registry=scenario.outlets.account_registry(),
    )
    platform.register_outlets(scenario.outlets.outlets())
    platform.ingest_posting_events(scenario.posting_events())
    platform.ingest_reaction_events(scenario.reaction_events())
    platform.process_stream()
    platform.assign_topics()

    # Pick one high-quality and one low-quality COVID-19 article.
    high_domains = {p.domain for p in scenario.outlets.high_quality()}
    low_domains = {p.domain for p in scenario.outlets.low_quality()}
    covid = scenario.topic_articles()
    high_article = next(g for g in covid if g.article.outlet_domain in high_domains)
    low_article = next(g for g in covid if g.article.outlet_domain in low_domains)

    # Domain experts review both articles (simulated reviewer pool).
    pool = ReviewerPool(n_reviewers=4, random_seed=7)
    for generated in (high_article, low_article):
        article = platform.get_article_by_url(generated.url)
        for review in pool.review_article(
            article.article_id, generated.true_quality, datetime(2020, 3, 10),
            comment="Careful, well-sourced reporting." if generated.true_quality > 0.5
            else "Sensationalist framing, weak sourcing.",
        ):
            platform.add_expert_review(review)

    print("\nArticle from a HIGH-quality outlet")
    render_card(platform.evaluate_url(high_article.url))

    print("\nArticle from a LOW-quality outlet")
    render_card(platform.evaluate_url(low_article.url))

    # The "arbitrary news article" path: register a brand-new page on the
    # synthetic web (it was never announced on social media, so the platform
    # has no record of it) and evaluate it straight from its URL.
    arbitrary_url = "https://unknown-blog.example.net/2020/03/01/miracle-cure"
    platform.site_store.register(
        arbitrary_url,
        "<html><head><title>You won't believe this miracle coronavirus cure!</title></head>"
        "<body><p>This shocking trick cures the virus overnight. Doctors hate it. "
        "Everyone should panic about the terrifying truth they hide.</p></body></html>",
    )
    print("\nArbitrary URL, never seen by the platform before")
    render_card(platform.evaluate_url(arbitrary_url))


if __name__ == "__main__":
    main()
