"""COVID-19 topic insights (§4.2): newsroom activity, social engagement and
evidence seeking, contrasted between low- and high-quality outlets.

This is the end-user view behind Figures 4 and 5 of the paper, computed over a
synthetic 45-outlet, 60-day data segment.

Run with::

    python examples/covid19_topic_insights.py [--outlets 45] [--scale 0.06]
"""

from __future__ import annotations

import argparse

from repro import PlatformConfig, SciLensPlatform
from repro.simulation import CovidScenarioConfig, generate_covid_scenario


def build_platform(n_outlets: int, volume_scale: float) -> tuple[SciLensPlatform, object]:
    scenario = generate_covid_scenario(
        CovidScenarioConfig(n_outlets=n_outlets, volume_scale=volume_scale, random_seed=13)
    )
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=scenario.site_store,
        account_registry=scenario.outlets.account_registry(),
    )
    platform.register_outlets(scenario.outlets.outlets())
    platform.ingest_posting_events(scenario.posting_events())
    platform.ingest_reaction_events(scenario.reaction_events())
    platform.process_stream()
    platform.assign_topics()
    return platform, scenario


def ascii_sparkline(values: list[float], width: int = 60) -> str:
    """Render a value series as a coarse ASCII sparkline."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    top = max(values) or 1.0
    step = max(1, len(values) // width)
    sampled = values[::step]
    return "".join(blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1)))] for v in sampled)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outlets", type=int, default=45)
    parser.add_argument("--scale", type=float, default=0.06,
                        help="fraction of each outlet's full daily volume to simulate")
    args = parser.parse_args()

    print(f"building the COVID-19 segment ({args.outlets} outlets, 60 days)...")
    platform, scenario = build_platform(args.outlets, args.scale)
    insights = platform.topic_insights(
        "covid19", window_start=scenario.window_start, window_end=scenario.window_end
    )

    # ------------------------------------------------------------- Figure 4
    activity = insights.newsroom_activity
    print("\n=== Newsroom activity (Figure 4) ===")
    print("mean % of daily posts devoted to COVID-19, averaged per quality group\n")
    low_series = list(activity.group_series(True))
    high_series = list(activity.group_series(False))
    print(f"low-quality  |{ascii_sparkline(low_series)}|")
    print(f"high-quality |{ascii_sparkline(high_series)}|")
    print(f"\nfirst half of the window : low {activity.mean_share(True, True):5.1f}%   "
          f"high {activity.mean_share(False, True):5.1f}%")
    print(f"second half of the window: low {activity.mean_share(True, False):5.1f}%   "
          f"high {activity.mean_share(False, False):5.1f}%")
    print(f"divergence (second half) : {activity.divergence():.1f} percentage points")

    # ------------------------------------------------------------- Figure 5
    engagement = insights.social_engagement.summary()
    evidence = insights.evidence_seeking.summary()
    print("\n=== Social engagement (Figure 5, left) ===")
    print(f"reactions per article  — low-quality : mean {engagement['low_mean']:7.1f}  "
          f"std {engagement['low_std']:7.1f}  (n={engagement['low_n']:.0f})")
    print(f"reactions per article  — high-quality: mean {engagement['high_mean']:7.1f}  "
          f"std {engagement['high_std']:7.1f}  (n={engagement['high_n']:.0f})")

    print("\n=== Evidence seeking (Figure 5, right) ===")
    print(f"scientific refs ratio  — low-quality : mean {evidence['low_mean']:.3f}  "
          f"median {evidence['low_median']:.3f}")
    print(f"scientific refs ratio  — high-quality: mean {evidence['high_mean']:.3f}  "
          f"median {evidence['high_median']:.3f}")

    print("\nInterpretation (matches the paper): low-quality outlets chase the breaking "
          "topic and harvest more social reach, while high-quality outlets publish more "
          "conservatively but ground their reporting in scientific references.")


if __name__ == "__main__":
    main()
