"""Quickstart: build the platform, ingest a small COVID-19 data segment and
evaluate one article in real time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import PlatformConfig, SciLensPlatform
from repro.logging_utils import configure_logging
from repro.simulation import CovidScenarioConfig, generate_covid_scenario


def main() -> None:
    configure_logging()

    # 1. Generate a small synthetic COVID-19 data segment (the offline stand-in
    #    for the Datastreamer feed + crawled article pages).
    scenario = generate_covid_scenario(CovidScenarioConfig.small(n_outlets=6, n_days=20))
    print("scenario:", scenario.summary())

    # 2. Build the platform around the scenario's synthetic web and outlet accounts.
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=scenario.site_store,
        account_registry=scenario.outlets.account_registry(),
    )
    platform.register_outlets(scenario.outlets.outlets())

    # 3. Stream the social-media events through the ingestion pipeline: postings
    #    and reactions go onto the broker, articles are scraped and stored.
    platform.ingest_posting_events(scenario.posting_events())
    platform.ingest_reaction_events(scenario.reaction_events())
    print("stream processing:", platform.process_stream())

    # 4. Content-based topic segmentation (supervised keyword topics).
    print("topic segmentation:", platform.assign_topics())

    # 5. Evaluate one article in real time: every automated indicator plus the
    #    (empty, so far) expert-review consensus.
    article_url = scenario.topic_articles()[0].url
    assessment = platform.evaluate_url(article_url)
    print("\n--- single article assessment ---")
    print(f"title        : {assessment.title}")
    print(f"outlet       : {assessment.outlet_domain} ({assessment.outlet_rating})")
    print(f"final score  : {assessment.final_score:.3f} -> {assessment.rating_class.value}")
    for family, score in assessment.profile.family_scores().items():
        print(f"  {family:<8} quality: {score:.3f}")

    # 6. Platform status (operational monitoring view).
    print("\nplatform status:", platform.status())


if __name__ == "__main__":
    main()
