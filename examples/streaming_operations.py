"""Operating the platform day by day (the Figure 2 architecture in motion).

Simulates two weeks of operation: every day the streaming pipeline ingests the
day's postings and reactions, articles are extracted into the operational
RDBMS, and a sync pass drains the change-data-capture stream into the
Distributed Storage (day one is a bootstrap copy; later days land as CDC
delta blocks merged into the base at read time); every seventh day the
periodic model-training job runs over the warehouse.

Run with::

    python examples/streaming_operations.py
"""

from __future__ import annotations

from datetime import timedelta

from repro import PlatformConfig, SciLensPlatform
from repro.simulation import CovidScenarioConfig, generate_covid_scenario


def events_between(events, start_iso: str, end_iso: str):
    return [(key, value) for key, value in events if start_iso <= value["created_at"] < end_iso]


def main() -> None:
    n_days = 14
    scenario = generate_covid_scenario(
        CovidScenarioConfig.small(n_outlets=10, n_days=n_days, random_seed=13)
    )
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=scenario.site_store,
        account_registry=scenario.outlets.account_registry(),
    )
    platform.register_outlets(scenario.outlets.outlets())

    postings = list(scenario.posting_events())
    reactions = list(scenario.reaction_events())

    print(f"{'day':<12}{'postings':>9}{'reactions':>10}{'articles':>9}"
          f"{'rdbms rows':>11}{'warehouse':>10}{'lag':>5}")
    for day in range(n_days):
        day_start = scenario.window_start + timedelta(days=day)
        day_end = day_start + timedelta(days=1)
        lo, hi = day_start.isoformat(), day_end.isoformat()

        day_postings = events_between(postings, lo, hi)
        day_reactions = events_between(reactions, lo, hi)
        platform.ingest_posting_events(day_postings)
        platform.ingest_reaction_events(day_reactions)
        platform.process_stream()

        # End of day: drain the CDC stream into the warehouse (a bootstrap
        # copy the first time, row deltas afterwards).
        migration = platform.run_daily_migration(now=day_end)

        # Periodic (weekly) model training over the full history.
        if day > 0 and day % 7 == 0:
            trained = platform.train_models(now=day_end)
            print(f"    [week {day // 7}] trained models over {trained['n_articles']} articles: "
                  + ", ".join(sorted(k for k in trained if k.endswith('_version'))))

        status = platform.status()
        rdbms_rows = status["articles"] + status["posts"] + status["reactions"]
        print(f"{day_start.date().isoformat():<12}{len(day_postings):>9}{len(day_reactions):>10}"
              f"{status['articles']:>9}{rdbms_rows:>11}{status['warehouse_rows']:>10}"
              f"{status['stream_lag']:>5}")
        assert migration.total_rows >= 0

    platform.assign_topics()
    print("\nfinal status:", platform.status())
    print("outlet segments:", {k: len(v) for k, v in platform.outlet_segments().items()})

    # Robustness of the Distributed Storage: kill a data node, verify the data
    # is still readable, and re-replicate onto the surviving nodes.
    platform.dfs.kill_node("node-0")
    under = len(platform.dfs.under_replicated_blocks())
    copies = platform.dfs.rebalance()
    print(f"\nkilled node-0: {under} under-replicated blocks, re-replicated {copies} copies")
    print("dfs stats:", platform.dfs.stats())


if __name__ == "__main__":
    main()
