"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments that lack the
``wheel`` package (pip falls back to the legacy ``setup.py develop`` path);
all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
