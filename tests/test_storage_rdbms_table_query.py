"""Tests for Table operations and the query builder."""

import pytest

from repro.errors import ColumnNotFound, ConstraintViolation, StorageError
from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.query import Query
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.table import Table
from repro.storage.rdbms.types import ColumnType


def articles_table() -> Table:
    schema = TableSchema(
        name="articles",
        primary_key="id",
        columns=(
            Column("id", ColumnType.TEXT, nullable=False),
            Column("outlet", ColumnType.TEXT, nullable=False),
            Column("reactions", ColumnType.INTEGER, default=0),
            Column("score", ColumnType.FLOAT),
        ),
    )
    table = Table(schema)
    rows = [
        {"id": "a1", "outlet": "low.example.com", "reactions": 50, "score": 0.2},
        {"id": "a2", "outlet": "low.example.com", "reactions": 120, "score": 0.3},
        {"id": "a3", "outlet": "high.example.com", "reactions": 10, "score": 0.8},
        {"id": "a4", "outlet": "high.example.com", "reactions": 5, "score": 0.9},
    ]
    table.insert_many(rows)
    return table


class TestTable:
    def test_insert_and_point_lookup(self):
        table = articles_table()
        assert table.row_count() == 4
        assert table.get("a3")["score"] == 0.8
        assert table.get("missing") is None

    def test_primary_key_uniqueness(self):
        table = articles_table()
        with pytest.raises(ConstraintViolation):
            table.insert({"id": "a1", "outlet": "x.example.com"})

    def test_update_rows(self):
        table = articles_table()
        updated = table.update_rows(col("outlet") == "low.example.com", {"score": 0.1})
        assert updated == 2
        assert table.get("a1")["score"] == 0.1

    def test_update_respects_unique_constraints(self):
        table = articles_table()
        with pytest.raises(ConstraintViolation):
            table.update_rows(col("id") == "a2", {"id": "a1"})

    def test_delete_rows(self):
        table = articles_table()
        deleted = table.delete_rows(col("reactions") < 20)
        assert deleted == 2
        assert table.row_count() == 2
        assert table.get("a3") is None

    def test_upsert_inserts_then_updates(self):
        table = articles_table()
        table.upsert({"id": "a9", "outlet": "new.example.com", "reactions": 1})
        assert table.row_count() == 5
        table.upsert({"id": "a9", "outlet": "new.example.com", "reactions": 7})
        assert table.row_count() == 5
        assert table.get("a9")["reactions"] == 7

    def test_secondary_index_is_used_for_equality(self):
        table = articles_table()
        table.create_index("outlet")
        rows = table.select(col("outlet") == "high.example.com")
        assert {row["id"] for row in rows} == {"a3", "a4"}

    def test_scan_returns_copies(self):
        table = articles_table()
        row = next(table.scan())
        row["reactions"] = 999999
        assert table.get(row["id"])["reactions"] != 999999

    def test_callable_predicates_work(self):
        table = articles_table()
        assert table.count(lambda row: row["score"] and row["score"] > 0.5) == 2

    def test_truncate_and_restore(self):
        table = articles_table()
        snapshot = table.snapshot()
        table.truncate()
        assert table.row_count() == 0
        table.restore(snapshot)
        assert table.row_count() == 4
        assert table.get("a1") is not None


class TestQuery:
    def test_where_order_limit_offset(self):
        query = (
            Query(articles_table())
            .where(col("reactions") > 5)
            .order_by("reactions", descending=True)
            .limit(2)
            .offset(1)
        )
        result = query.execute()
        assert [row["id"] for row in result] == ["a1", "a3"]

    def test_projection(self):
        result = Query(articles_table()).select("id", "score").limit(1).execute()
        assert set(result[0].keys()) == {"id", "score"}

    def test_projection_unknown_column(self):
        with pytest.raises(ColumnNotFound):
            Query(articles_table()).select("missing").execute()

    def test_aggregate_without_group_by(self):
        result = (
            Query(articles_table())
            .aggregate(total=("count", "*"), mean_score=("avg", "score"))
            .execute()
        )
        assert result[0]["total"] == 4
        assert result[0]["mean_score"] == pytest.approx(0.55)

    def test_group_by_aggregation(self):
        result = (
            Query(articles_table())
            .group_by("outlet")
            .aggregate(articles=("count", "*"), reach=("sum", "reactions"))
            .order_by("outlet")
            .execute()
        )
        assert len(result) == 2
        by_outlet = {row["outlet"]: row for row in result}
        assert by_outlet["low.example.com"]["reach"] == 170
        assert by_outlet["high.example.com"]["articles"] == 2

    def test_group_by_without_aggregate_raises(self):
        with pytest.raises(StorageError):
            Query(articles_table()).group_by("outlet").execute()

    def test_scalar_and_first(self):
        result = Query(articles_table()).aggregate(total=("count", "*")).execute()
        assert result.scalar() == 4
        assert Query(articles_table()).order_by("id").execute().first()["id"] == "a1"
        assert Query(articles_table()).where(col("id") == "zzz").execute().first() is None

    def test_column_accessor(self):
        result = Query(articles_table()).order_by("id").select("id").execute()
        assert result.column("id") == ["a1", "a2", "a3", "a4"]
        with pytest.raises(ColumnNotFound):
            result.column("missing")

    def test_chained_where_is_conjunctive(self):
        result = (
            Query(articles_table())
            .where(col("outlet") == "low.example.com")
            .where(col("reactions") > 100)
            .execute()
        )
        assert [row["id"] for row in result] == ["a2"]

    def test_join(self):
        outlets_schema = TableSchema(
            name="outlets",
            primary_key="domain",
            columns=(
                Column("domain", ColumnType.TEXT, nullable=False),
                Column("rating", ColumnType.TEXT, nullable=False),
            ),
        )
        outlets = Table(outlets_schema)
        outlets.insert({"domain": "low.example.com", "rating": "low"})
        outlets.insert({"domain": "high.example.com", "rating": "high"})

        result = (
            Query(articles_table())
            .join(outlets, left_column="outlet", right_column="domain")
            .where(col("reactions") >= 50)
            .execute()
        )
        assert all(row["outlets.rating"] == "low" for row in result)
        assert len(result) == 2

    def test_aggregate_unknown_function(self):
        with pytest.raises(StorageError):
            Query(articles_table()).aggregate(x=("median", "score"))

    def test_negative_limit_rejected(self):
        with pytest.raises(StorageError):
            Query(articles_table()).limit(-1)
