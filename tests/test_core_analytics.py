"""Tests for the warehouse batch-analytics jobs (repro.core.analytics)."""

from datetime import datetime

import pytest

from repro.core.analytics import WarehouseAnalytics
from repro.errors import WarehouseError
from repro.models import RatingClass
from repro.storage.warehouse.warehouse import Warehouse


@pytest.fixture(scope="module")
def migrated(loaded_platform):
    """The shared platform with its history migrated into the warehouse."""
    loaded_platform.run_daily_migration(now=datetime(2020, 3, 20))
    return loaded_platform


class TestWarehouseAnalytics:
    def test_daily_article_counts_match_the_operational_store(self, migrated):
        analytics = migrated.warehouse_analytics()
        counts = analytics.daily_article_counts()
        assert sum(counts.values()) == migrated.article_count()
        assert all(count > 0 for count in counts.values())
        # Days are returned in calendar order.
        days = list(counts)
        assert days == sorted(days)

    def test_topic_filtered_counts_are_a_subset(self, migrated):
        analytics = migrated.warehouse_analytics()
        all_counts = analytics.daily_article_counts()
        covid_counts = analytics.daily_article_counts("covid19")
        assert sum(covid_counts.values()) < sum(all_counts.values())
        for day, count in covid_counts.items():
            assert count <= all_counts[day]

    def test_articles_per_outlet_cover_every_outlet(self, migrated, small_scenario):
        analytics = migrated.warehouse_analytics()
        per_outlet = analytics.articles_per_outlet()
        assert sum(per_outlet.values()) == migrated.article_count()
        assert set(per_outlet) <= {p.domain for p in small_scenario.outlets}

    def test_outlet_activity_profiles_join_posts_and_reactions(self, migrated, small_scenario):
        analytics = migrated.warehouse_analytics()
        profiles = analytics.outlet_activity_profiles("covid19")
        assert len(profiles) == len(analytics.articles_per_outlet())
        total_reactions = sum(p.reactions for p in profiles.values())
        assert total_reactions == len(small_scenario.reactions)
        for profile in profiles.values():
            assert 0.0 <= profile.topic_share <= 1.0
            assert profile.active_days >= 1
            assert profile.posts >= profile.articles  # every article is announced

    def test_rating_class_summary_shows_quality_contrast(self, migrated):
        analytics = migrated.warehouse_analytics()
        summary = analytics.rating_class_summary(migrated.outlet_ratings, "covid19")
        assert summary, "at least one rating class must be present"
        low_classes = [v for k, v in summary.items() if RatingClass(k).is_low_quality]
        high_classes = [v for k, v in summary.items() if RatingClass(k).is_high_quality]
        if low_classes and high_classes:
            low_reach = max(c["mean_reactions_per_article"] for c in low_classes)
            high_reach = max(c["mean_reactions_per_article"] for c in high_classes)
            assert low_reach > high_reach

    def test_missing_table_raises(self):
        analytics = WarehouseAnalytics(Warehouse())
        with pytest.raises(WarehouseError):
            analytics.daily_article_counts()


class TestActiveDaysLayouts:
    """active_days must be correct for any articles-table layout."""

    ROWS = [
        {"url": "u1", "outlet_domain": "a.com", "published_at": datetime(2020, 1, 1, 8), "topics": []},
        {"url": "u2", "outlet_domain": "a.com", "published_at": datetime(2020, 1, 1, 21), "topics": []},
        {"url": "u3", "outlet_domain": "a.com", "published_at": datetime(2020, 1, 3, 9), "topics": []},
        {"url": "u4", "outlet_domain": "b.com", "published_at": datetime(2020, 1, 2, 9), "topics": []},
    ]
    EXPECTED = {"a.com": 2, "b.com": 1}

    def _profiles(self, warehouse):
        return WarehouseAnalytics(warehouse).outlet_activity_profiles()

    def test_day_partitioned_table_uses_partition_counting(self):
        warehouse = Warehouse()
        table = warehouse.create_table(
            "articles", ["url", "outlet_domain", "published_at", "topics"],
            "published_at",
        )
        table.append(self.ROWS)
        assert WarehouseAnalytics._partitioned_by_day_of(table, "published_at")
        profiles = self._profiles(warehouse)
        assert {o: p.active_days for o, p in profiles.items()} == self.EXPECTED

    def test_non_day_partitioned_table_falls_back_to_timestamp_grouping(self):
        # Partitioned by outlet value: partitions are NOT publication days, so
        # counting partitions would report nonsense (1 active day per outlet).
        warehouse = Warehouse()
        table = warehouse.create_table(
            "articles", ["url", "outlet_domain", "published_at", "topics"],
            "outlet_domain", partition_by="value",
        )
        table.append(self.ROWS)
        assert not WarehouseAnalytics._partitioned_by_day_of(table, "published_at")
        profiles = self._profiles(warehouse)
        assert {o: p.active_days for o, p in profiles.items()} == self.EXPECTED


class TestMonitoringService:
    def test_status_jobs_models_and_stream(self, migrated):
        from repro.api import build_gateway

        gateway = build_gateway(migrated)
        status = gateway.handle("monitoring.status")
        assert status.ok and status.payload["articles"] == migrated.article_count()

        jobs = gateway.handle("monitoring.jobs")
        assert jobs.ok
        assert "daily_migration" in jobs.payload["registered"]
        assert jobs.payload["runs"], "the migration fixture ran at least one job"

        stream = gateway.handle("monitoring.stream")
        assert stream.ok
        assert stream.payload["pipeline"]["lag"] == 0
        assert "postings" in stream.payload["topics"]

        models = gateway.handle("monitoring.models")
        assert models.ok
        assert isinstance(models.payload["models"], dict)
