"""Tests for the expert-review subsystem: criteria, store, aggregation,
simulated reviewers and consensus metrics."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import ReviewError
from repro.experts.aggregation import ReviewAggregator
from repro.experts.consensus import consensus_report, pairwise_agreement, score_variance
from repro.experts.criteria import (
    CRITERIA,
    criterion_definition,
    normalize_to_quality,
    quality_direction,
    validate_scores,
)
from repro.experts.reviewers import ReviewerPool, SimulatedReviewer
from repro.experts.reviews import ReviewStore
from repro.models import ExpertReview

NOW = datetime(2020, 3, 1, 12, 0, 0)


def make_review(review_id, reviewer="expert-1", article="a1", created_at=NOW,
                scores=None, weight=1.0, comment=""):
    return ExpertReview(
        review_id=review_id,
        article_id=article,
        reviewer_id=reviewer,
        created_at=created_at,
        scores=scores or {"factual_accuracy": 4, "sources_quality": 4, "clickbaitness": 2},
        reviewer_weight=weight,
        comment=comment,
    )


class TestCriteria:
    def test_seven_criteria_with_definitions(self):
        assert len(CRITERIA) == 7
        for key in CRITERIA:
            definition = criterion_definition(key)
            assert definition.display_name and definition.question

    def test_clickbaitness_is_inverted(self):
        assert quality_direction("factual_accuracy") == 1
        assert quality_direction("clickbaitness") == -1
        assert normalize_to_quality("factual_accuracy", 5) == pytest.approx(1.0)
        assert normalize_to_quality("clickbaitness", 5) == pytest.approx(0.0)
        assert normalize_to_quality("clickbaitness", 1) == pytest.approx(1.0)

    def test_validate_scores(self):
        validate_scores({"fairness": 3})
        with pytest.raises(ReviewError):
            validate_scores({"unknown": 3})
        with pytest.raises(ReviewError):
            validate_scores({"fairness": 9})
        with pytest.raises(ReviewError):
            validate_scores({"fairness": 3}, require_all=True)

    def test_unknown_criterion_definition(self):
        with pytest.raises(ReviewError):
            criterion_definition("novelty")


class TestReviewStore:
    def test_add_and_lookup(self):
        store = ReviewStore([make_review("r1"), make_review("r2", reviewer="expert-2")])
        assert len(store) == 2
        assert "r1" in store
        assert len(store.reviews_for_article("a1")) == 2
        assert store.reviewer_ids() == ["expert-1", "expert-2"]
        assert store.reviewed_article_ids() == ["a1"]

    def test_duplicate_review_id_rejected(self):
        store = ReviewStore([make_review("r1")])
        with pytest.raises(ReviewError):
            store.add(make_review("r1"))

    def test_latest_per_reviewer_keeps_only_newest(self):
        store = ReviewStore([
            make_review("r1", created_at=NOW - timedelta(days=5),
                        scores={"fairness": 2}),
            make_review("r2", created_at=NOW, scores={"fairness": 5}),
        ])
        latest = store.latest_per_reviewer("a1")
        assert len(latest) == 1
        assert latest[0].scores["fairness"] == 5

    def test_comments_listing(self):
        store = ReviewStore([make_review("r1", comment="Solid sourcing."), make_review("r2", reviewer="e2")])
        comments = store.comments_for_article("a1")
        assert len(comments) == 1
        assert comments[0][2] == "Solid sourcing."

    def test_missing_review(self):
        with pytest.raises(ReviewError):
            ReviewStore().get("nope")


class TestAggregation:
    def test_weighted_time_sensitive_average_favours_recent_reviews(self):
        aggregator = ReviewAggregator(half_life_days=10.0)
        old = make_review("r1", reviewer="e1", created_at=NOW - timedelta(days=40),
                          scores={"factual_accuracy": 1})
        new = make_review("r2", reviewer="e2", created_at=NOW,
                          scores={"factual_accuracy": 5})
        summary = aggregator.summarize("a1", [old, new], as_of=NOW)
        # The recent 5 dominates the 40-day-old 1 (weight ratio 16:1).
        assert summary.criterion_scores["factual_accuracy"] > 4.5
        assert summary.n_reviews == 2
        assert 0.0 <= summary.overall_quality <= 1.0

    def test_reviewer_weight_matters(self):
        aggregator = ReviewAggregator()
        light = make_review("r1", reviewer="e1", scores={"fairness": 1}, weight=1.0)
        heavy = make_review("r2", reviewer="e2", scores={"fairness": 5}, weight=4.0)
        summary = aggregator.summarize("a1", [light, heavy], as_of=NOW)
        assert summary.criterion_scores["fairness"] == pytest.approx((1 + 20) / 5.0)

    def test_clickbaitness_lowers_overall_quality(self):
        aggregator = ReviewAggregator()
        clean = make_review("r1", scores={"factual_accuracy": 5, "clickbaitness": 1})
        baity = make_review("r2", reviewer="e2", article="a2",
                            scores={"factual_accuracy": 5, "clickbaitness": 5})
        assert (
            aggregator.summarize("a1", [clean], as_of=NOW).overall_quality
            > aggregator.summarize("a2", [baity], as_of=NOW).overall_quality
        )

    def test_empty_reviews_give_zero_summary(self):
        summary = ReviewAggregator().summarize("a1", [])
        assert summary.n_reviews == 0
        assert summary.overall_quality == 0.0
        assert summary.score("fairness") is None

    def test_comments_and_payload(self):
        aggregator = ReviewAggregator()
        summary = aggregator.summarize("a1", [make_review("r1", comment="Good piece")], as_of=NOW)
        assert summary.comments == ("Good piece",)
        payload = summary.as_dict()
        assert payload["expert_n_reviews"] == 1.0

    def test_outlet_quality_aggregation(self):
        aggregator = ReviewAggregator()
        summaries = [
            aggregator.summarize("a1", [make_review("r1")], as_of=NOW),
            aggregator.summarize("a2", [], as_of=NOW),
        ]
        quality = aggregator.outlet_quality(summaries)
        assert quality == pytest.approx(summaries[0].overall_quality)
        assert aggregator.outlet_quality([summaries[1]]) is None

    def test_invalid_half_life(self):
        with pytest.raises(ReviewError):
            ReviewAggregator(half_life_days=0)


class TestSimulatedReviewers:
    def test_reviews_track_latent_quality(self):
        pool = ReviewerPool(n_reviewers=5, random_seed=7)
        high = pool.review_article("a-high", 0.9, NOW)
        low = pool.review_article("a-low", 0.1, NOW)
        aggregator = ReviewAggregator()
        high_score = aggregator.summarize("a-high", high, as_of=NOW).overall_quality
        low_score = aggregator.summarize("a-low", low, as_of=NOW).overall_quality
        assert high_score > low_score + 0.2

    def test_review_scores_are_on_the_likert_scale(self):
        pool = ReviewerPool(n_reviewers=3, random_seed=1)
        for review in pool.review_article("a1", 0.5, NOW):
            assert set(review.scores) == set(CRITERIA)
            assert all(1 <= v <= 5 for v in review.scores.values())

    def test_subset_of_reviewers(self):
        pool = ReviewerPool(n_reviewers=6, random_seed=2)
        reviews = pool.review_article("a1", 0.5, NOW, n_reviews=2)
        assert len(reviews) == 2

    def test_invalid_quality_rejected(self):
        reviewer = SimulatedReviewer(reviewer_id="e1")
        with pytest.raises(ReviewError):
            reviewer.review("a1", 1.5, NOW, np.random.default_rng(0))


class TestConsensus:
    def test_agreement_and_variance(self):
        assert pairwise_agreement([4, 4, 4]) == pytest.approx(1.0)
        assert pairwise_agreement([1, 5]) == pytest.approx(0.0)
        assert pairwise_agreement([3]) == 1.0
        assert score_variance([2, 4]) == pytest.approx(1.0)
        assert score_variance([3]) == 0.0

    def test_consensus_report_shows_improvement(self):
        without = {"a1": [1, 5, 3], "a2": [2, 5, 1]}
        with_ind = {"a1": [4, 4, 3], "a2": [2, 3, 2]}
        report = consensus_report(without, with_ind)
        assert report["agreement_improvement"] > 0
        assert report["variance_reduction"] > 0
        assert report["articles"] == 2

    def test_consensus_requires_shared_articles(self):
        with pytest.raises(ReviewError):
            consensus_report({"a1": [1]}, {"b1": [2]})
