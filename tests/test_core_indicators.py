"""Tests for the three indicator families and their fusion."""

from datetime import datetime

import pytest

from repro.config import IndicatorConfig
from repro.core.indicators.aggregate import IndicatorEngine
from repro.core.indicators.content import ContentIndicatorComputer
from repro.core.indicators.context import ContextIndicatorComputer, ContextIndicators
from repro.core.indicators.social import SocialIndicatorComputer
from repro.models import Article

NOW = datetime(2020, 2, 10, 9, 0)


def make_article(title, text, author=None, html="", url="https://low.example.com/a", topics=()):
    return Article(
        article_id="art-x",
        url=url,
        outlet_domain="low.example.com",
        title=title,
        published_at=NOW,
        text=text,
        html=html,
        author=author,
        topics=tuple(topics),
    )


class TestContentIndicators:
    def test_quality_article_scores_better_than_clickbait_article(self):
        computer = ContentIndicatorComputer()
        good = computer.compute(make_article(
            "Study examines vaccine efficacy",
            "The peer-reviewed study measured infection rates in 2400 participants. "
            "Researchers report a statistically significant association according to the data. "
            "The authors caution that the findings require replication.",
            author="Jane Roe",
        ))
        bad = computer.compute(make_article(
            "You won't believe this SHOCKING vaccine secret!!!",
            "This is absolutely terrifying and outrageous. I think everyone should panic "
            "because the shocking truth is being hidden from you. It is a complete disaster.",
        ))
        assert good.clickbait_score < bad.clickbait_score
        assert good.subjectivity < bad.subjectivity
        assert good.has_byline and not bad.has_byline
        assert good.quality_score > bad.quality_score

    def test_as_dict_contains_all_indicators(self):
        indicators = ContentIndicatorComputer().compute(make_article("T", "Some body text here.", author="A"))
        payload = indicators.as_dict()
        assert {"clickbait_score", "subjectivity", "readability", "has_byline", "content_quality"} <= set(payload)

    def test_readability_report_kept_on_request(self):
        computer = ContentIndicatorComputer(keep_readability_report=True)
        indicators = computer.compute(make_article("T", "Short sentences are easy. They read well."))
        assert indicators.readability_report is not None


class TestContextIndicators:
    HTML = (
        "<html><body>"
        '<p><a href="https://low.example.com/related/1">see also</a></p>'
        '<p><a href="https://nature.com/articles/1">study</a>'
        '   <a href="https://who.int/report">report</a></p>'
        '<p><a href="https://othernews.example.org/x">other coverage</a></p>'
        "</body></html>"
    )

    def test_links_parsed_from_html_and_classified(self):
        indicators = ContextIndicatorComputer().compute(make_article("T", "body", html=self.HTML))
        assert indicators.internal_references == 1
        assert indicators.external_references == 1
        assert indicators.scientific_references == 2
        assert indicators.scientific_ratio == pytest.approx(0.5)
        assert indicators.quality_score > 0.3

    def test_explicit_links_override_html(self):
        indicators = ContextIndicatorComputer().compute(
            make_article("T", "body", html=self.HTML), links=["https://nature.com/x"]
        )
        assert indicators.total_references == 1
        assert indicators.scientific_ratio == 1.0

    def test_no_references_scores_zero(self):
        indicators = ContextIndicatorComputer().compute(make_article("T", "body"))
        assert indicators.total_references == 0
        assert indicators.quality_score == 0.0
        assert indicators.scientific_ratio == 0.0

    def test_more_scientific_references_increase_quality(self):
        few = ContextIndicators(article_id="a", internal_references=0, external_references=0, scientific_references=1)
        many = ContextIndicators(article_id="a", internal_references=0, external_references=0, scientific_references=4)
        assert many.quality_score > few.quality_score


class TestSocialIndicators:
    def test_reach_and_stance_computed(self, sample_article, sample_posts, sample_reactions):
        indicators = SocialIndicatorComputer().compute(sample_article, sample_posts, sample_reactions)
        assert indicators.n_posts == 3
        assert indicators.n_reactions == 10
        assert 0.0 < indicators.popularity <= 1.0
        assert indicators.positive_stance > 0.0
        assert indicators.negative_stance > 0.0
        assert 0.0 <= indicators.quality_score <= 1.0

    def test_no_discussion_is_neutral(self, sample_article):
        indicators = SocialIndicatorComputer().compute(sample_article, [], [])
        assert indicators.quality_score == 0.5
        assert indicators.n_posts == 0


class TestIndicatorEngine:
    def test_profile_combines_all_families(self, sample_article, sample_posts, sample_reactions):
        engine = IndicatorEngine()
        profile = engine.profile(sample_article, sample_posts, sample_reactions)
        assert profile.article_id == sample_article.article_id
        assert set(profile.family_scores()) == {"content", "context", "social"}
        assert 0.0 <= profile.automated_score <= 1.0
        payload = profile.as_dict()
        assert "clickbait_score" in payload and "scientific_ratio" in payload and "popularity" in payload

    def test_weights_shift_the_fused_score(self, sample_article, sample_posts, sample_reactions):
        content_only = IndicatorEngine(IndicatorConfig(content_weight=1, context_weight=0, social_weight=0))
        context_only = IndicatorEngine(IndicatorConfig(content_weight=0, context_weight=1, social_weight=0))
        p1 = content_only.profile(sample_article, sample_posts, sample_reactions)
        p2 = context_only.profile(sample_article, sample_posts, sample_reactions)
        assert p1.automated_score == pytest.approx(p1.content.quality_score)
        assert p2.automated_score == pytest.approx(p2.context.quality_score)

    def test_profile_many_matches_single_profiles(self, sample_article, sample_posts, sample_reactions):
        engine = IndicatorEngine()
        posts_by_url = {sample_article.url: sample_posts}
        reactions_by_post = {}
        for reaction in sample_reactions:
            reactions_by_post.setdefault(reaction.post_id, []).append(reaction)
        batch = engine.profile_many([sample_article], posts_by_url, reactions_by_post)
        single = engine.profile(sample_article, sample_posts, reactions_by_post)
        assert batch[0].automated_score == pytest.approx(single.automated_score)
