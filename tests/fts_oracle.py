"""A deliberately naive, independent re-implementation of the FTS semantics.

The differential oracle for ``repro.storage.fts``: its own character scanner,
its own query parser and its own BM25 arithmetic, sharing **no code** with the
engine.  The property suite asserts that engine and oracle agree token for
token and score for score (floating-point ``==``, not ``approx``) on
arbitrary unicode corpora, so any drift in either implementation fails loudly.

Everything here is written for clarity over speed: documents are kept as
plain token lists, every search walks every document, prefix terms scan the
whole vocabulary.  That is the point — the engine's posting lists, segments
and LSN bookkeeping must be observationally equivalent to this brute force.
"""

from __future__ import annotations

import math

#: Characters that join two alphabetic runs into one token (apostrophes and
#: hyphens), mirroring the contract of ``repro.nlp.tokenize.word_tokens``.
_JOINERS = ("'", "’", "-")

K1 = 1.2
B = 0.75


def oracle_fold(word: str) -> str:
    """Case-fold one token the way the engine promises to: stable under
    repetition and always lowercase (``casefold`` alone maps Cherokee to
    uppercase; the extra ``lower`` pins the fixpoint)."""
    return word.casefold().lower()


def oracle_tokens(text: str) -> list[str]:
    """Independent tokenizer: alphabetic runs, joiners glued mid-word.

    A token starts at an alphabetic character; inside a token, a joiner is
    kept only when the character after it is alphabetic, so leading/trailing
    joiners never attach.  Everything else is a separator.
    """
    tokens: list[str] = []
    word: list[str] = []
    n = len(text)
    for i, ch in enumerate(text):
        if ch.isalpha():
            word.append(ch)
        elif word and ch in _JOINERS and i + 1 < n and text[i + 1].isalpha():
            word.append(ch)
        else:
            if word:
                tokens.append(oracle_fold("".join(word)))
                word = []
    if word:
        tokens.append(oracle_fold("".join(word)))
    return tokens


def oracle_query_terms(query: str) -> list[tuple[str, bool]]:
    """Parse a MATCH query into ``(term, is_prefix)`` pairs, AND semantics.

    Whitespace-split chunks; a chunk ending in ``*`` marks its final analyzed
    token as a prefix term (earlier tokens of the same chunk stay exact).
    Chunks that analyze to nothing contribute no terms.
    """
    terms: list[tuple[str, bool]] = []
    for chunk in query.split():
        prefix = chunk.endswith("*")
        tokens = oracle_tokens(chunk[:-1] if prefix else chunk)
        if not tokens:
            continue
        for token in tokens[:-1]:
            terms.append((token, False))
        terms.append((tokens[-1], prefix))
    return terms


class FtsOracle:
    """Brute-force reference index: a dict of token lists, searched linearly."""

    def __init__(self) -> None:
        self.docs: dict[object, list[str]] = {}

    def add(self, doc_id, text: str) -> None:
        self.docs[doc_id] = oracle_tokens(text)

    def delete(self, doc_id) -> None:
        self.docs.pop(doc_id, None)

    # ------------------------------------------------------------- matching

    def _term_tf(self, term: str, prefix: bool) -> dict[object, int]:
        """``doc_id -> tf`` for one query term; prefix tf sums expansions."""
        out: dict[object, int] = {}
        for doc_id, tokens in self.docs.items():
            if prefix:
                tf = sum(1 for token in tokens if token.startswith(term))
            else:
                tf = sum(1 for token in tokens if token == term)
            if tf:
                out[doc_id] = tf
        return out

    def match_ids(self, query: str) -> set:
        terms = oracle_query_terms(query)
        if not terms or not self.docs:
            return set()
        matched: set | None = None
        for term, prefix in terms:
            tf_map = self._term_tf(term, prefix)
            matched = set(tf_map) if matched is None else matched & set(tf_map)
            if not matched:
                return set()
        return matched

    def search(self, query: str, limit: int | None = None) -> list[tuple[object, float]]:
        """BM25 ranking, mirroring the engine's arithmetic *textually*.

        ``avgdl``/``idf``/the term expression below must stay character-for-
        character in sync with ``repro.storage.fts.analysis.bm25_term_score``
        (same operand order), and scores accumulate over query terms in query
        order — that is what makes ``==`` on floats a fair assertion.
        """
        terms = oracle_query_terms(query)
        if not terms or not self.docs:
            return []
        tf_maps = [self._term_tf(term, prefix) for term, prefix in terms]
        matched = set(tf_maps[0])
        for tf_map in tf_maps[1:]:
            matched &= set(tf_map)
        n_docs = len(self.docs)
        total_len = sum(len(tokens) for tokens in self.docs.values())
        results = []
        for doc_id in matched:
            doc_len = len(self.docs[doc_id])
            score = 0.0
            for tf_map in tf_maps:
                tf = tf_map[doc_id]
                df = len(tf_map)
                k1 = K1
                b = B
                avgdl = total_len / n_docs
                idf = math.log(1.0 + (n_docs - df + 0.5) / (df + 0.5))
                score += idf * (tf * (k1 + 1.0)) / (tf + k1 * (1.0 - b + b * (doc_len / avgdl)))
            results.append((doc_id, score))
        results.sort(key=lambda pair: (-pair[1], (isinstance(pair[0], str), pair[0])))
        if limit is not None:
            return results[:limit]
        return results
