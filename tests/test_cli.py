"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

CLI_SIZE = ["--outlets", "4", "--days", "8", "--scale", "0.25", "--seed", "7"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["insights"])
        assert args.outlets == 10
        assert args.days == 20
        assert args.command == "insights"


class TestCommands:
    def test_insights_outputs_figure_summaries(self, capsys):
        exit_code = main(CLI_SIZE + ["insights"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["topic"] == "covid19"
        assert payload["articles"] > 0
        assert "divergence_pct_points" in payload["newsroom_activity"]
        assert payload["social_engagement"]["low_n"] >= 0

    def test_assess_outputs_an_assessment_payload(self, capsys):
        exit_code = main(CLI_SIZE + ["assess"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.0 <= payload["final_score"] <= 1.0
        assert "indicators" in payload

    def test_assess_unknown_url_returns_error_code(self, capsys):
        exit_code = main(CLI_SIZE + ["assess", "--url", "https://missing.example.com/x"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_status_reports_operational_counters(self, capsys):
        exit_code = main(CLI_SIZE + ["status"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["articles"] > 0
        assert payload["stream_lag"] == 0
        assert payload["warehouse_rows"] > 0
        assert sum(payload["outlet_segments"].values()) == 4
