"""Tests for the social substrate: accounts, reach, stance aggregation, cascades."""

from datetime import datetime

import pytest

from repro.errors import ValidationError
from repro.models import Reaction, ReactionKind, SocialPost
from repro.social.accounts import AccountRegistry, SocialAccount
from repro.social.cascade import build_cascade, cascade_metrics, share_reactions
from repro.social.reach import compute_reach, posts_per_article, reactions_per_article
from repro.social.stance_aggregate import aggregate_stance

NOW = datetime(2020, 2, 1, 12, 0, 0)
URL = "https://dailyscience.example.com/story"


def _post(post_id, text="", account="@user", reply_to=None, followers=100):
    return SocialPost(
        post_id=post_id,
        platform="twitter",
        account=account,
        article_url=URL,
        text=text,
        created_at=NOW,
        followers=followers,
        reply_to=reply_to,
    )


def _reaction(reaction_id, post_id, kind=ReactionKind.LIKE, text=""):
    return Reaction(
        reaction_id=reaction_id, post_id=post_id, kind=kind, created_at=NOW, text=text
    )


class TestAccountRegistry:
    def test_add_lookup_and_case_insensitivity(self):
        registry = AccountRegistry([
            SocialAccount(handle="@DailyScience", platform="twitter",
                          outlet_domain="dailyscience.example.com", followers=1000),
        ])
        assert "@dailyscience" in registry
        assert registry.outlet_for("@DAILYSCIENCE") == "dailyscience.example.com"
        assert registry.followers_of("@dailyscience") == 1000
        assert registry.followers_of("@unknown") == 0

    def test_accounts_of_outlet(self):
        registry = AccountRegistry()
        registry.add(SocialAccount(handle="@a", platform="twitter", outlet_domain="x.example.com"))
        registry.add(SocialAccount(handle="@b", platform="twitter"))
        assert len(registry.accounts_of_outlet("x.example.com")) == 1
        assert not registry.get("@b").is_outlet_account

    def test_invalid_account(self):
        with pytest.raises(ValidationError):
            SocialAccount(handle="", platform="twitter")


class TestReach:
    def test_reach_counts_posts_and_reactions(self):
        posts = [_post("p1", followers=1000), _post("p2", followers=50)]
        reactions = [
            _reaction("r1", "p1", ReactionKind.LIKE),
            _reaction("r2", "p1", ReactionKind.SHARE),
            _reaction("r3", "p2", ReactionKind.REPLY),
            _reaction("r4", "unrelated-post", ReactionKind.LIKE),
        ]
        report = compute_reach(URL, posts, reactions)
        assert report.n_posts == 2
        assert report.n_reactions == 3
        assert report.reaction_counts["share"] == 1
        assert report.follower_exposure == 1050
        # 2 posts + like(1) + share(2) + reply(1.5)
        assert report.weighted_reach == pytest.approx(6.5)
        assert 0.0 < report.popularity < 1.0

    def test_reach_accepts_mapping_of_reactions(self):
        posts = [_post("p1")]
        reactions = {"p1": [_reaction("r1", "p1")], "other": [_reaction("r2", "other")]}
        report = compute_reach(URL, posts, reactions)
        assert report.n_reactions == 1

    def test_zero_activity(self):
        report = compute_reach(URL, [], [])
        assert report.popularity == 0.0
        assert report.weighted_reach == 0.0

    def test_reactions_and_posts_per_article(self):
        posts = [_post("p1"), _post("p2")]
        reactions = [_reaction("r1", "p1"), _reaction("r2", "p2"), _reaction("r3", "p2")]
        assert reactions_per_article(posts, reactions) == {URL: 3}
        assert posts_per_article(posts) == {URL: 2}


class TestStanceAggregation:
    def test_distribution_over_posts_and_text_reactions(self):
        posts = [
            _post("p1", "Great article, accurate and informative."),
            _post("p2", "This is fake news, debunked nonsense."),
            _post("p3", "Morning news roundup."),
        ]
        reactions = [_reaction("r1", "p1", ReactionKind.REPLY, text="Exactly right, thanks for sharing.")]
        distribution = aggregate_stance(URL, posts, reactions)
        assert distribution.n_classified == 4
        assert distribution.positive_fraction > distribution.negative_fraction
        assert -1.0 <= distribution.net_stance <= 1.0
        payload = distribution.as_dict()
        assert payload["stance_positive"] + payload["stance_negative"] == pytest.approx(1.0)

    def test_empty_discussion(self):
        distribution = aggregate_stance(URL, [], [])
        assert distribution.n_classified == 0
        assert distribution.positive_fraction == 0.0


class TestCascade:
    def test_cascade_structure_and_metrics(self):
        posts = [
            _post("root1"),
            _post("childA", reply_to="root1"),
            _post("childB", reply_to="root1"),
            _post("grandchild", reply_to="childA"),
            _post("orphan", reply_to="missing-post"),
        ]
        reactions = [_reaction("r1", "root1", ReactionKind.SHARE), _reaction("r2", "childB", ReactionKind.QUOTE)]
        cascade = build_cascade(URL, posts, reactions)
        metrics = cascade_metrics(cascade)
        assert cascade.size == 7
        assert set(cascade.roots) == {"root1", "orphan"}
        assert metrics["depth"] >= 2
        assert metrics["breadth"] >= 2
        assert metrics["virality"] > 0

    def test_empty_cascade(self):
        metrics = cascade_metrics(build_cascade(URL, [], []))
        assert metrics["size"] == 0.0

    def test_share_reactions_filter(self):
        reactions = [
            _reaction("r1", "p", ReactionKind.LIKE),
            _reaction("r2", "p", ReactionKind.SHARE),
            _reaction("r3", "p", ReactionKind.QUOTE),
        ]
        assert {r.reaction_id for r in share_reactions(reactions)} == {"r2", "r3"}
