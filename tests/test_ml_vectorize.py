"""Tests for the count / TF-IDF vectorisers."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml.vectorize import CountVectorizer, TfidfVectorizer, corpus_matrix, top_terms

CORPUS = [
    "coronavirus outbreak spreads in the city",
    "coronavirus vaccine trial reports results",
    "telescope observes distant galaxy cluster",
    "galaxy survey maps the night sky",
]


class TestCountVectorizer:
    def test_fit_transform_shape(self):
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(CORPUS)
        assert matrix.shape == (4, len(vectorizer.vocabulary_))

    def test_counts_are_correct(self):
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(["virus virus outbreak"])
        index = vectorizer.vocabulary_["virus"]
        assert matrix[0, index] == 2

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            CountVectorizer().transform(["text"])

    def test_min_count_filters_rare_tokens(self):
        vectorizer = CountVectorizer(min_count=2)
        vectorizer.fit(CORPUS)
        assert "coronavirus" in vectorizer.vocabulary_
        assert "telescope" not in vectorizer.vocabulary_

    def test_max_features_caps_vocabulary(self):
        vectorizer = CountVectorizer(max_features=3)
        vectorizer.fit(CORPUS)
        assert len(vectorizer.vocabulary_) == 3

    def test_unknown_tokens_are_ignored_at_transform(self):
        vectorizer = CountVectorizer()
        vectorizer.fit(CORPUS[:1])
        matrix = vectorizer.transform(["completely unrelated words"])
        assert matrix.sum() == 0

    def test_feature_names_align_with_columns(self):
        vectorizer = CountVectorizer()
        vectorizer.fit(CORPUS)
        names = vectorizer.feature_names
        assert names[vectorizer.vocabulary_["galaxy"]] == "galaxy"


class TestTfidfVectorizer:
    def test_rows_are_l2_normalised(self):
        matrix = TfidfVectorizer().fit_transform(CORPUS)
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_rare_terms_get_higher_idf(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(CORPUS)
        idf = vectorizer.idf_
        common = vectorizer.vocabulary_["coronavirus"]   # appears in 2 docs
        rare = vectorizer.vocabulary_["telescope"]       # appears in 1 doc
        assert idf[rare] > idf[common]

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TfidfVectorizer().transform(["text"])

    def test_top_terms(self):
        vectorizer = TfidfVectorizer()
        matrix = vectorizer.fit_transform(CORPUS)
        terms = dict(top_terms(matrix[0], vectorizer.feature_names, k=3))
        assert any(t in terms for t in ("outbreak", "spreads", "city", "coronavirus"))

    def test_top_terms_length_mismatch(self):
        with pytest.raises(ValueError):
            top_terms(np.zeros(3), ["a", "b"], k=2)

    def test_corpus_matrix_helper(self):
        matrix, vectorizer = corpus_matrix(CORPUS)
        assert matrix.shape[0] == 4
        again, _ = corpus_matrix(CORPUS[:2], vectorizer)
        assert again.shape == (2, matrix.shape[1])
