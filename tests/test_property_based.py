"""Property-based tests (hypothesis) on core data structures and invariants."""

from collections import Counter
from datetime import datetime, timedelta

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experts.consensus import pairwise_agreement, score_variance
from repro.ml.kde import GaussianKDE
from repro.ml.metrics import accuracy_score, roc_auc_score
from repro.nlp.clickbait import clickbait_score
from repro.nlp.readability import readability_report
from repro.nlp.stance import StanceClassifier
from repro.nlp.subjectivity import subjectivity_score
from repro.nlp.tokenize import count_syllables, word_tokens
from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.table import Table
from repro.storage.rdbms.types import ColumnType
from repro.storage.warehouse.blocks import ColumnarBlock
from repro.streaming.broker import MessageBroker
from repro.streaming.windowing import window_start

# Text strategies: printable-ish text including punctuation and unicode.
texts = st.text(min_size=0, max_size=400)
words = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")), min_size=1, max_size=20)


class TestNlpProperties:
    @given(texts)
    @settings(max_examples=60, deadline=None)
    def test_scorers_are_bounded_and_total(self, text):
        assert 0.0 <= subjectivity_score(text) <= 1.0
        assert 0.0 <= clickbait_score(text) <= 1.0
        report = readability_report(text)
        assert 0.0 <= report.score <= 1.0
        # The stance classifier never crashes and always returns a label.
        StanceClassifier().analyse(text)

    @given(words)
    @settings(max_examples=100, deadline=None)
    def test_every_word_has_at_least_one_syllable(self, word):
        assert count_syllables(word) >= 1

    @given(texts)
    @settings(max_examples=60, deadline=None)
    def test_word_tokens_are_lowercase_alphabetic(self, text):
        for token in word_tokens(text):
            assert token == token.lower()


class TestStorageProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=-10_000, max_value=10_000), st.floats(allow_nan=False, allow_infinity=False, width=32)),
            min_size=1,
            max_size=60,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_table_insert_then_select_roundtrip(self, rows):
        schema = TableSchema(
            name="t",
            primary_key="id",
            columns=(
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("value", ColumnType.FLOAT),
            ),
        )
        table = Table(schema)
        for key, value in rows:
            table.insert({"id": key, "value": value})
        assert table.row_count() == len(rows)
        for key, value in rows:
            stored = table.get(key)
            assert stored is not None
            assert stored["value"] == float(np.float32(value)) or stored["value"] == value
        # Deleting everything empties the table and its indexes.
        assert table.delete_rows(col("id").is_not_null()) == len(rows)
        assert table.row_count() == 0

    @given(
        st.lists(
            st.fixed_dictionaries(
                {
                    "id": st.integers(min_value=0, max_value=1_000_000),
                    "label": st.sampled_from(["low", "high", "mixed"]),
                    "score": st.floats(min_value=0, max_value=1, allow_nan=False),
                }
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_columnar_block_roundtrip_preserves_rows(self, rows):
        block = ColumnarBlock.from_rows(rows, ["id", "label", "score"])
        restored = ColumnarBlock.from_bytes(block.to_bytes())
        assert restored.to_rows() == [
            {"id": r["id"], "label": r["label"], "score": r["score"]} for r in rows
        ]
        stats = restored.stats["id"]
        assert stats["min"] == min(r["id"] for r in rows)
        assert stats["max"] == max(r["id"] for r in rows)


class TestStreamingProperties:
    @given(st.lists(st.tuples(st.text(min_size=1, max_size=8), st.integers()), min_size=1, max_size=80),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_broker_delivers_every_message_exactly_once_per_group(self, events, partitions):
        broker = MessageBroker(default_partitions=partitions)
        broker.create_topic("t")
        for key, value in events:
            broker.produce("t", {"v": value}, key=key)

        delivered = []
        while True:
            batch = broker.poll("group", "t", max_messages=7)
            if not batch:
                break
            delivered.extend(batch)
        assert len(delivered) == len(events)
        assert Counter(m.value["v"] for m in delivered) == Counter(v for _k, v in events)
        assert broker.lag("group", "t") == 0

    @given(st.lists(st.tuples(st.text(min_size=1, max_size=8), st.integers()), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_per_key_ordering_is_preserved(self, events):
        broker = MessageBroker(default_partitions=4)
        broker.create_topic("t")
        for index, (key, _value) in enumerate(events):
            broker.produce("t", {"seq": index}, key=key)
        seen: dict[int, int] = {}
        for message in broker.poll("g", "t", max_messages=10_000):
            partition = message.partition
            if partition in seen:
                assert message.offset > seen[partition]
            seen[partition] = message.offset

    @given(st.datetimes(min_value=datetime(2019, 1, 1), max_value=datetime(2021, 1, 1)),
           st.integers(min_value=1, max_value=72))
    @settings(max_examples=60, deadline=None)
    def test_window_start_is_idempotent_and_contains_timestamp(self, ts, hours):
        duration = timedelta(hours=hours)
        start = window_start(ts, duration)
        assert start <= ts < start + duration
        assert window_start(start, duration) == start


class TestMathProperties:
    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=200))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
    def test_kde_density_is_non_negative(self, samples):
        kde = GaussianKDE(samples)
        _xs, density = kde.curve(100)
        assert np.all(density >= 0)

    @given(st.lists(st.floats(min_value=1, max_value=5, allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_agreement_and_variance_bounds(self, scores):
        assert 0.0 <= pairwise_agreement(scores) <= 1.0
        assert score_variance(scores) >= 0.0

    @given(st.lists(st.booleans(), min_size=2, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_accuracy_of_perfect_predictions_is_one(self, labels):
        assert accuracy_score(labels, list(labels)) == 1.0

    @given(st.lists(st.tuples(st.booleans(), st.floats(min_value=0, max_value=1, allow_nan=False)),
                    min_size=4, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_roc_auc_is_bounded(self, pairs):
        labels = [int(label) for label, _score in pairs]
        scores = [score for _label, score in pairs]
        if len(set(labels)) < 2:
            return
        assert 0.0 <= roc_auc_score(labels, scores) <= 1.0
