"""Tests for the Indicators-API micro-services, gateway and cache."""

import time

import pytest

from repro.api import build_gateway
from repro.api.cache import TtlCache
from repro.api.gateway import ApiGateway
from repro.api.service import MicroService, ServiceRequest, ServiceResponse
from repro.errors import RouteNotFound


@pytest.fixture(scope="module")
def gateway(loaded_platform):
    return build_gateway(loaded_platform)


class TestTtlCache:
    def test_put_get_and_lru_eviction(self):
        cache = TtlCache(capacity=2, ttl_seconds=100)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refreshes recency of "a"
        cache.put("c", 3)               # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_ttl_expiry(self):
        cache = TtlCache(capacity=4, ttl_seconds=0.01)
        cache.put("a", 1)
        time.sleep(0.03)
        assert cache.get("a") is None

    def test_zero_capacity_disables_caching(self):
        cache = TtlCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None

    def test_stats_and_invalidate(self):
        cache = TtlCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        cache.invalidate()
        assert len(cache) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TtlCache(capacity=-1)
        with pytest.raises(ValueError):
            TtlCache(ttl_seconds=-1)

    def test_put_purges_expired_entries(self):
        cache = TtlCache(capacity=2, ttl_seconds=0.01)
        cache.put("stale1", 1)
        cache.put("stale2", 2)
        time.sleep(0.03)
        # Without the purge, the two expired entries would fill capacity and
        # force the eviction of the fresh one being inserted alongside them.
        cache.put("fresh", 3)
        assert len(cache) == 1
        assert cache.get("fresh") == 3

    def test_cached_falsy_values_are_hits(self):
        from repro.api.cache import MISS

        cache = TtlCache(capacity=4, ttl_seconds=100)
        cache.put("none", None)
        cache.put("empty", [])
        assert cache.get("none", MISS) is None
        assert cache.get("empty", MISS) == []
        assert cache.get("absent", MISS) is MISS
        assert cache.hits == 2 and cache.misses == 1


class TestServiceFramework:
    def test_unknown_operation_is_404(self):
        service = MicroService()
        response = service.handle("nope", ServiceRequest(route="service.nope"))
        assert response.status == 404

    def test_handler_exceptions_become_500(self):
        service = MicroService()
        service.register("boom", lambda request: 1 / 0)
        response = service.handle("boom", ServiceRequest(route="service.boom"))
        assert response.status == 500 and "ZeroDivisionError" in response.error

    def test_missing_required_parameter_is_400(self):
        service = MicroService()
        service.register("echo", lambda request: ServiceResponse.success(request.param("x", required=True)))
        response = service.handle("echo", ServiceRequest(route="service.echo"))
        assert response.status == 400

    def test_gateway_rejects_unknown_service_and_malformed_routes(self, gateway):
        with pytest.raises(RouteNotFound):
            gateway.handle("nosuch.operation")
        with pytest.raises(RouteNotFound):
            gateway.handle("malformed-route")

    def test_gateway_keeps_caller_supplied_cache(self, loaded_platform):
        from repro.api import build_gateway
        from repro.config import ApiConfig

        # Regression: a freshly-built TtlCache is empty and therefore falsy,
        # so `cache or TtlCache()` silently replaced every configured cache
        # with the defaults.  The configured capacity/TTL must stick.
        custom = TtlCache(capacity=7, ttl_seconds=9.0)
        assert ApiGateway(cache=custom).cache is custom
        disabled = build_gateway(loaded_platform, ApiConfig(cache_capacity=0))
        assert disabled.cache.capacity == 0
        disabled.handle("articles.outlets")
        disabled.handle("articles.outlets")
        assert disabled.cache.hits == 0  # capacity 0 really disables caching

    def test_unknown_operation_on_known_service_lists_operations(self, gateway):
        response = gateway.handle("articles.frobnicate")
        assert response.status == 404 and not response.ok
        # The structured 404 tells the caller what the service does serve.
        assert "articles" in response.error and "frobnicate" in response.error
        assert "articles.list" in response.error and "articles.get" in response.error

    def test_cache_stores_response_uncopied_and_copies_on_get(self):
        import json

        class Fixed(MicroService):
            name = "fixed"
            cacheable = ("fetch",)

            def __init__(self):
                super().__init__()
                self.register("fetch", lambda request: ServiceResponse.success({"x": 1}))

        gateway = ApiGateway()
        gateway.mount(Fixed())
        miss = gateway.handle("fixed.fetch")
        # Copy-on-get-only: the miss response is stored as-is (the cache owns
        # the instance; no put-time deep copy) …
        cache_key = ("fixed.fetch", json.dumps({}, sort_keys=True, default=str))
        assert gateway.cache.get(cache_key) is miss
        # … and every hit is a private deep copy of it.
        hit = gateway.handle("fixed.fetch")
        assert hit is not miss and hit.payload is not miss.payload
        assert hit.payload == miss.payload

    def test_cache_hits_do_not_alias_responses(self):
        calls = {"n": 0}

        class Counting(MicroService):
            name = "counting"
            cacheable = ("fetch",)

            def __init__(self):
                super().__init__()
                self.register("fetch", self._fetch)

            def _fetch(self, request):
                calls["n"] += 1
                return ServiceResponse.success({"items": [1, 2, 3]})

        gateway = ApiGateway()
        gateway.mount(Counting())
        first = gateway.handle("counting.fetch")
        second = gateway.handle("counting.fetch")
        assert calls["n"] == 1  # second call was a cache hit
        assert second.payload == first.payload
        assert second is not first and second.payload is not first.payload
        # A caller mutating its response must not poison the cache.
        second.payload["items"].append(99)
        third = gateway.handle("counting.fetch")
        assert third.payload == {"items": [1, 2, 3]}


class TestArticlesService:
    def test_list_and_get(self, gateway, small_scenario):
        listing = gateway.handle("articles.list", {"limit": 5})
        assert listing.ok and listing.payload["total"] > 0
        assert len(listing.payload["articles"]) <= 5

        first = listing.payload["articles"][0]
        fetched = gateway.handle("articles.get", {"article_id": first["article_id"]})
        assert fetched.ok and fetched.payload["url"] == first["url"]

        by_url = gateway.handle("articles.by_url", {"url": first["url"]})
        assert by_url.ok and by_url.payload["article_id"] == first["article_id"]

    def test_topic_and_outlet_filters(self, gateway, small_scenario):
        outlet = small_scenario.outlets.profiles[0].domain
        response = gateway.handle("articles.list", {"outlet_domain": outlet, "limit": 1000})
        assert response.ok
        assert all(a["outlet_domain"] == outlet for a in response.payload["articles"])

        covid = gateway.handle("articles.list", {"topic": "covid19", "limit": 1000})
        assert all("covid19" in a["topics"] for a in covid.payload["articles"])

    def test_unknown_article_is_404(self, gateway):
        assert gateway.handle("articles.get", {"article_id": "missing"}).status == 404

    def test_outlets_listing(self, gateway, small_scenario):
        response = gateway.handle("articles.outlets")
        assert response.ok
        assert len(response.payload["outlets"]) == len(small_scenario.outlets)


class TestIndicatorsService:
    def test_evaluate_by_id_and_cached(self, gateway, small_scenario, loaded_platform):
        article = loaded_platform.get_article_by_url(small_scenario.topic_articles()[0].url)
        response = gateway.handle("indicators.evaluate", {"article_id": article.article_id})
        assert response.ok
        assert 0.0 <= response.payload["final_score"] <= 1.0
        assert "clickbait_score" in response.payload["indicators"]

        cached = gateway.handle("indicators.cached", {"article_id": article.article_id})
        assert cached.ok

    def test_evaluate_unknown_article_is_404(self, gateway):
        assert gateway.handle("indicators.evaluate", {"article_id": "missing"}).status == 404
        assert gateway.handle("indicators.evaluate_url", {"url": "https://missing.example.com/x"}).status == 404

    def test_evaluate_url_for_known_article(self, gateway, small_scenario):
        url = small_scenario.topic_articles()[0].url
        response = gateway.handle("indicators.evaluate_url", {"url": url})
        assert response.ok and response.payload["url"] == url


class TestReviewsService:
    def test_submit_and_summarise(self, gateway, small_scenario, loaded_platform):
        article = loaded_platform.get_article_by_url(small_scenario.topic_articles()[3].url)
        submit = gateway.handle(
            "reviews.submit",
            {
                "article_id": article.article_id,
                "reviewer_id": "api-expert",
                "scores": {"factual_accuracy": 4, "sources_quality": 5, "clickbaitness": 2},
                "comment": "Well sourced.",
            },
        )
        assert submit.ok

        listing = gateway.handle("reviews.for_article", {"article_id": article.article_id})
        assert listing.ok and len(listing.payload["reviews"]) >= 1

        summary = gateway.handle("reviews.summary", {"article_id": article.article_id})
        assert summary.ok and summary.payload["expert_n_reviews"] >= 1.0

    def test_invalid_scores_rejected(self, gateway, small_scenario, loaded_platform):
        article = loaded_platform.get_article_by_url(small_scenario.topic_articles()[4].url)
        response = gateway.handle(
            "reviews.submit",
            {"article_id": article.article_id, "reviewer_id": "x", "scores": {"factual_accuracy": 9}},
        )
        assert response.status == 400


class TestInsightsService:
    def test_topic_bundle(self, gateway):
        response = gateway.handle("insights.topic", {"topic": "covid19"})
        assert response.ok
        payload = response.payload
        assert payload["topic"] == "covid19"
        assert len(payload["newsroom_activity"]["days"]) > 0
        assert payload["social_engagement"]["low_mean"] > payload["social_engagement"]["high_mean"]
        assert payload["evidence_seeking"]["high_mean"] > payload["evidence_seeking"]["low_mean"]

    def test_individual_axes_and_caching(self, gateway):
        first = gateway.handle("insights.newsroom_activity", {"topic": "covid19"})
        assert first.ok and len(first.payload["low_quality_series"]) == len(first.payload["days"])
        hits_before = gateway.cache.hits
        second = gateway.handle("insights.newsroom_activity", {"topic": "covid19"})
        assert second.ok
        assert gateway.cache.hits == hits_before + 1  # served from the response cache

        engagement = gateway.handle("insights.social_engagement", {"topic": "covid19"})
        assert engagement.ok and "kde" in engagement.payload
        evidence = gateway.handle("insights.evidence_seeking", {"topic": "covid19"})
        assert evidence.ok

    def test_outlet_segments(self, gateway, small_scenario):
        response = gateway.handle("insights.outlet_segments")
        assert response.ok
        total = sum(len(v) for v in response.payload["segments"].values())
        assert total == len(small_scenario.outlets)

    def test_gateway_stats_and_routes(self, gateway):
        assert "indicators.evaluate" in gateway.routes()
        stats = gateway.stats()
        assert stats["requests"] > 0
        assert "insights" in stats["services"]
