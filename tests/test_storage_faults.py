"""Unit tests for the fault-injection / retry / health layer.

Covers the primitives in :mod:`repro.storage.faults` (seeded injector,
retry policy, circuit breaker, health records) and the per-layer contracts
they guard: all-or-nothing DFS writes, torn-cursor tolerance in the WAL
tailer, checkpoint saves that fail without losing offsets, and the new
configuration knobs.
"""

import json

import pytest

from repro.config import PlatformConfig, StorageConfig
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    RetryExhaustedError,
    StorageError,
    TransientFaultError,
    WarehouseError,
)
from repro.storage.faults import (
    CircuitBreaker,
    FaultInjector,
    HealthMonitor,
    RetryPolicy,
    SubsystemHealth,
)
from repro.storage.rdbms.wal import WalTailer, WriteAheadLog
from repro.storage.warehouse.dfs import DistributedFileSystem
from repro.streaming.checkpoint import CheckpointStore


def _instant_policy(**overrides):
    """A retry policy whose backoff sleeps are recorded, not slept."""
    delays: list[float] = []
    policy = RetryPolicy(sleep=delays.append, **overrides)
    return policy, delays


# ======================================================================
# FaultInjector
# ======================================================================


class TestFaultInjector:
    def test_unarmed_sites_are_noops(self):
        injector = FaultInjector()
        injector.check("dfs.write", "/x")
        assert injector.triggered() == 0
        assert injector.checked("dfs.write") == 1

    def test_scripted_count_fires_exactly_n_times(self):
        injector = FaultInjector()
        injector.inject("dfs.write", count=2)
        for _ in range(2):
            with pytest.raises(TransientFaultError):
                injector.check("dfs.write")
        injector.check("dfs.write")  # exhausted — no-op again
        assert injector.triggered("dfs.write") == 2

    def test_probabilistic_faults_replay_identically_per_seed(self):
        def pattern(seed):
            injector = FaultInjector(seed=seed)
            injector.inject("broker.publish", probability=0.5)
            fired = []
            for _ in range(32):
                try:
                    injector.check("broker.publish")
                    fired.append(False)
                except TransientFaultError:
                    fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # the seed is the replay key
        assert any(pattern(7)) and not all(pattern(7))

    def test_custom_error_class_and_disarm(self):
        injector = FaultInjector()
        injector.inject("dfs.read", error=lambda detail: WarehouseError(detail))
        with pytest.raises(WarehouseError):
            injector.check("dfs.read", "/warehouse/t/block-1.blk")
        injector.disarm("dfs.read")
        injector.check("dfs.read")


# ======================================================================
# RetryPolicy
# ======================================================================


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        policy, delays = _instant_policy(max_attempts=4)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientFaultError("flap")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert calls["n"] == 3
        assert len(delays) == 2
        assert delays[1] > delays[0] * 1.0  # backoff grows (modulo jitter)

    def test_exhaustion_raises_with_attempt_count_and_cause(self):
        policy, _ = _instant_policy(max_attempts=3)

        def always():
            raise TransientFaultError("down")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(always, description="unit op")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, TransientFaultError)
        assert "unit op" in str(excinfo.value)

    def test_non_retryable_errors_propagate_immediately(self):
        policy, delays = _instant_policy(max_attempts=5)
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise WarehouseError("not transient")

        with pytest.raises(WarehouseError):
            policy.call(fatal)
        assert calls["n"] == 1
        assert delays == []

    def test_timeout_budget_stops_retrying(self):
        clock = {"t": 0.0}

        def fake_clock():
            clock["t"] += 10.0
            return clock["t"]

        policy = RetryPolicy(
            max_attempts=100, timeout=5.0, sleep=lambda _d: None, clock=fake_clock
        )
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            raise TransientFaultError("down")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(always)
        assert "timeout budget" in str(excinfo.value)
        assert calls["n"] == 1

    def test_on_retry_callback_sees_every_retry(self):
        policy, _ = _instant_policy(max_attempts=3)
        seen: list[int] = []

        def always():
            raise TransientFaultError("down")

        with pytest.raises(RetryExhaustedError):
            policy.call(always, on_retry=lambda attempt, _exc: seen.append(attempt))
        assert seen == [1, 2]


# ======================================================================
# CircuitBreaker
# ======================================================================


class TestCircuitBreaker:
    def test_opens_after_threshold_and_blocks_calls(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=60.0)
        for _ in range(2):
            breaker.record_failure()
        breaker.allow()  # still closed
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.allow("cdc apply")
        assert breaker.open_count == 1

    def test_half_open_probe_closes_on_success_reopens_on_failure(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=10.0, clock=lambda: clock["t"]
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock["t"] = 11.0
        assert breaker.state == "half-open"
        breaker.allow()  # the probe is admitted
        breaker.record_failure()  # probe failed: straight back to open
        assert breaker.state == "open"
        assert breaker.open_count == 2
        clock["t"] = 22.0
        breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()


# ======================================================================
# Health
# ======================================================================


class TestHealth:
    def test_subsystem_lifecycle_counters(self):
        health = SubsystemHealth(name="dfs")
        health.note_retry(TransientFaultError("flap"))
        assert health.state == "ok" and health.retries == 1
        health.degrade(TransientFaultError("down"))
        assert health.state == "degraded" and health.failures == 1
        assert "TransientFaultError" in health.last_error
        health.recover()
        assert health.state == "ok" and health.recoveries == 1

    def test_monitor_overall_is_worst_subsystem(self):
        monitor = HealthMonitor()
        assert monitor.overall() == "ok"
        monitor.subsystem("dfs")
        monitor.subsystem("cdc-applier").degrade("poisoned batch")
        assert monitor.overall() == "degraded"
        monitor.subsystem("warehouse").fail("gone")
        report = monitor.report()
        assert report["overall"] == "failed"
        assert set(report["subsystems"]) == {"dfs", "cdc-applier", "warehouse"}
        assert report["subsystems"]["dfs"]["state"] == "ok"


# ======================================================================
# DFS write atomicity + retry wiring
# ======================================================================


class TestDfsFaultTolerance:
    def test_partial_write_rolls_back_all_replicas(self):
        dfs = DistributedFileSystem(n_nodes=3, replication=2, block_size=8)
        node = dfs.nodes["node-0"]
        original_store = node.store
        calls = {"n": 0}

        def failing_store(block_id, data):
            calls["n"] += 1
            if calls["n"] > 1:
                raise WarehouseError("disk full")
            original_store(block_id, data)

        node.store = failing_store
        with pytest.raises(WarehouseError):
            dfs.write_file("/t/a.blk", b"x" * 64)  # multi-block write
        node.store = original_store
        stats = dfs.stats()
        assert stats["files"] == 0.0
        assert stats["blocks"] == 0.0
        assert stats["stored_bytes"] == 0.0
        assert not dfs.exists("/t/a.blk")

    def test_failed_overwrite_keeps_the_old_file_readable(self):
        dfs = DistributedFileSystem(n_nodes=3, replication=2, block_size=8)
        injector = FaultInjector()
        dfs.fault_injector = injector
        dfs.write_file("/t/a.blk", b"version-one")
        injector.inject("dfs.write", count=1)
        with pytest.raises(TransientFaultError):
            dfs.write_file("/t/a.blk", b"version-two!")
        assert dfs.read_file("/t/a.blk") == b"version-one"

    def test_transient_write_faults_are_retried_and_health_recovers(self):
        policy, _ = _instant_policy(max_attempts=4)
        injector = FaultInjector()
        health = SubsystemHealth(name="dfs")
        dfs = DistributedFileSystem(
            n_nodes=3, replication=2,
            fault_injector=injector, retry_policy=policy, health=health,
        )
        injector.inject("dfs.write", count=2)
        assert dfs.write_file("/t/a.blk", b"payload") == 1
        assert dfs.read_file("/t/a.blk") == b"payload"
        assert health.retries == 2
        assert health.state == "ok"

    def test_exhausted_retries_degrade_health_then_recover(self):
        policy, _ = _instant_policy(max_attempts=2)
        injector = FaultInjector()
        health = SubsystemHealth(name="dfs")
        dfs = DistributedFileSystem(
            n_nodes=3, replication=2,
            fault_injector=injector, retry_policy=policy, health=health,
        )
        injector.inject("dfs.write")  # every attempt fails until disarm
        with pytest.raises(RetryExhaustedError):
            dfs.write_file("/t/a.blk", b"payload")
        assert health.state == "degraded"
        injector.disarm()
        dfs.write_file("/t/a.blk", b"payload")
        assert health.state == "ok"
        assert health.recoveries == 1


# ======================================================================
# WAL tailer torn cursor
# ======================================================================


class TestWalTailerCursor:
    def _wal(self, n=3):
        wal = WriteAheadLog()
        for i in range(n):
            wal.append("insert", "t", {"row": {"k": i}})
        return wal

    def test_torn_cursor_restarts_from_zero_instead_of_crashing(self, tmp_path):
        cursor_path = tmp_path / "cursor.json"
        cursor_path.write_text("{garbage", encoding="utf-8")
        tailer = WalTailer(self._wal(), cursor_path=cursor_path)
        assert tailer.cursor == 0
        assert [r.sequence for r in tailer.tail()] == [1, 2, 3]

    def test_wrong_shape_cursor_is_also_tolerated(self, tmp_path):
        cursor_path = tmp_path / "cursor.json"
        cursor_path.write_text(json.dumps({"wrong": "shape"}), encoding="utf-8")
        assert WalTailer(self._wal(), cursor_path=cursor_path).cursor == 0

    def test_reset_rewinds_and_persists(self, tmp_path):
        cursor_path = tmp_path / "cursor.json"
        tailer = WalTailer(self._wal(), cursor_path=cursor_path)
        tailer.advance(3)
        tailer.reset(1)
        assert tailer.cursor == 1
        assert WalTailer(self._wal(), cursor_path=cursor_path).cursor == 1
        with pytest.raises(StorageError):
            tailer.reset(-1)


# ======================================================================
# Checkpoint saves under faults
# ======================================================================


class TestCheckpointFaults:
    def test_save_faults_are_retried(self, tmp_path):
        policy, _ = _instant_policy(max_attempts=4)
        injector = FaultInjector()
        store = CheckpointStore(
            tmp_path / "offsets.json", fault_injector=injector, retry_policy=policy
        )
        injector.inject("checkpoint.save", count=2)
        store.save("g", "topic", 0, 5)
        assert store.offsets("g", "topic") == {0: 5}
        restored = CheckpointStore(tmp_path / "offsets.json")
        assert restored.offsets("g", "topic") == {0: 5}

    def test_failed_save_keeps_in_memory_offsets(self, tmp_path):
        injector = FaultInjector()
        store = CheckpointStore(tmp_path / "offsets.json", fault_injector=injector)
        injector.inject("checkpoint.save", count=1)
        with pytest.raises(TransientFaultError):
            store.save("g", "topic", 0, 5)
        # The worst case is a stale file (redelivery), never a lost offset.
        assert store.offsets("g", "topic") == {0: 5}


# ======================================================================
# Configuration knobs
# ======================================================================


class TestFaultToleranceConfig:
    def test_defaults_validate(self):
        PlatformConfig().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"retry_max_attempts": 0},
            {"retry_base_delay_s": -0.1},
            {"retry_base_delay_s": 2.0, "retry_max_delay_s": 1.0},
            {"cdc_breaker_threshold": 0},
            {"cdc_breaker_cooldown_s": -1.0},
        ],
    )
    def test_invalid_knobs_are_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            StorageConfig(**overrides).validate()
