"""Tests for the SciLensPlatform orchestrator (uses the shared loaded platform)."""

from datetime import datetime

import pytest

from repro.errors import ArticleNotFound
from repro.models import ExpertReview, RatingClass


class TestIngestion:
    def test_stream_processing_stored_everything(self, loaded_platform, small_scenario):
        status = loaded_platform.status()
        assert status["articles"] == len(small_scenario.articles)
        assert status["posts"] == len(small_scenario.posts)
        assert status["reactions"] == len(small_scenario.reactions)
        assert status["stream_lag"] == 0
        assert status["outlets"] == len(small_scenario.outlets)

    def test_articles_round_trip_through_the_operational_store(self, loaded_platform, small_scenario):
        generated = small_scenario.articles[0]
        stored = loaded_platform.get_article_by_url(generated.url)
        assert stored.outlet_domain == generated.article.outlet_domain
        assert stored.title == generated.article.title
        assert loaded_platform.get_article(stored.article_id).url == generated.url

    def test_missing_article_raises(self, loaded_platform):
        with pytest.raises(ArticleNotFound):
            loaded_platform.get_article("missing-id")
        with pytest.raises(ArticleNotFound):
            loaded_platform.get_article_by_url("https://nowhere.example.com/x")

    def test_posts_and_reactions_linked_to_articles(self, loaded_platform, small_scenario):
        covid_article = small_scenario.topic_articles()[0]
        posts = loaded_platform.posts_for_article(covid_article.url)
        assert posts, "covid articles always have at least the outlet announcement post"
        reactions = loaded_platform.reactions_for_posts([p.post_id for p in posts])
        assert set(reactions) == {p.post_id for p in posts}


class TestSegmentation:
    def test_supervised_topic_tagging_marks_covid_articles(self, loaded_platform, small_scenario):
        tagged = [a for a in loaded_platform.articles() if "covid19" in a.topics]
        generated_covid = small_scenario.topic_articles()
        tagged_ids = {a.url for a in tagged}
        generated_ids = {g.url for g in generated_covid}
        # keyword tagging recovers the large majority of the generated COVID articles
        recall = len(tagged_ids & generated_ids) / len(generated_ids)
        assert recall > 0.85

    def test_outlet_segments_follow_rating_classes(self, loaded_platform, small_scenario):
        segments = loaded_platform.outlet_segments()
        total = sum(len(domains) for domains in segments.values())
        assert total == len(small_scenario.outlets)
        for rating_value, domains in segments.items():
            for domain in domains:
                assert small_scenario.outlets.get(domain).rating_class.value == rating_value


class TestEvaluationAndReviews:
    def test_evaluate_article_and_indicator_cache(self, loaded_platform, small_scenario):
        article = loaded_platform.get_article_by_url(small_scenario.topic_articles()[0].url)
        assessment = loaded_platform.evaluate_article(article.article_id)
        assert 0.0 <= assessment.final_score <= 1.0
        assert assessment.outlet_rating is not None
        cached = loaded_platform.cached_indicators(article.article_id)
        assert cached is not None
        assert cached["automated_score"] == pytest.approx(assessment.profile.automated_score)

    def test_evaluate_url_for_stored_article(self, loaded_platform, small_scenario):
        url = small_scenario.topic_articles()[1].url
        assessment = loaded_platform.evaluate_url(url)
        assert assessment.url == url

    def test_expert_review_changes_the_final_score(self, loaded_platform, small_scenario):
        article = loaded_platform.get_article_by_url(small_scenario.topic_articles()[2].url)
        before = loaded_platform.evaluate_article(article.article_id).final_score
        loaded_platform.add_expert_review(
            ExpertReview(
                review_id=f"rev-{article.article_id}-tester",
                article_id=article.article_id,
                reviewer_id="tester",
                created_at=datetime(2020, 3, 14),
                scores={"factual_accuracy": 5, "sources_quality": 5, "clickbaitness": 1,
                        "fairness": 5, "logic_reasoning": 5, "precision_clarity": 5,
                        "scientific_understanding": 5},
                comment="Excellent piece.",
            )
        )
        after = loaded_platform.evaluate_article(article.article_id)
        assert after.has_expert_reviews
        assert after.final_score >= before
        assert loaded_platform.status()["reviews"] >= 1


class TestAnalyticsJobs:
    def test_daily_migration_moves_rows_once(self, loaded_platform):
        first = loaded_platform.run_daily_migration(now=datetime(2020, 3, 16))
        second = loaded_platform.run_daily_migration(now=datetime(2020, 3, 17))
        assert first.total_rows > 0
        assert second.total_rows == 0
        assert loaded_platform.warehouse.total_rows() >= first.total_rows
        # articles are partitioned by day in the warehouse
        assert len(loaded_platform.warehouse.table("articles").partitions()) > 1

    def test_periodic_training_registers_models(self, loaded_platform):
        trained = loaded_platform.train_models(now=datetime(2020, 3, 16))
        assert trained["n_articles"] > 0
        assert "clickbait_model_version" in trained
        assert "topic_model_version" in trained
        assert set(loaded_platform.models.names()) >= {"clickbait-title", "topic-hierarchy"}
        clickbait_model = loaded_platform.models.get("clickbait-title")
        proba = clickbait_model.predict_proba(["You won't believe this shocking trick"])
        assert 0.0 <= float(proba[0]) <= 1.0

    def test_topic_insights_reproduce_the_papers_shapes(self, loaded_platform, small_scenario):
        insights = loaded_platform.topic_insights(
            "covid19",
            window_start=small_scenario.window_start,
            window_end=small_scenario.window_end,
        )
        activity = insights.newsroom_activity
        # Low-quality outlets devote a larger share of their output to the topic
        # in the second half of the window (Figure 4).
        assert activity.mean_share(True, first_half=False) > activity.mean_share(False, first_half=False)
        # Low-quality articles attract more and more widely spread reactions (Figure 5 left).
        assert insights.social_engagement.low_mean_higher()
        # High-quality articles cite scientific sources more (Figure 5 right).
        assert not insights.evidence_seeking.low_mean_higher()

    def test_topic_insights_require_articles(self):
        from repro import PlatformConfig, SciLensPlatform

        empty = SciLensPlatform(PlatformConfig())
        with pytest.raises(ArticleNotFound):
            empty.topic_insights()


class TestPlannerStatus:
    def test_status_surfaces_planner_counters(self, loaded_platform):
        # Force at least one index-backed plan through the operational store.
        domains = {article.outlet_domain for article in loaded_platform.articles()}
        assert loaded_platform.count_articles(outlet_domain=next(iter(domains))) >= 1
        planner = loaded_platform.status()["planner"]
        assert set(planner) == {
            "plans_by_path",
            "plans_by_mode",
            "analyze_runs",
            "estimation_error",
            "tables",
        }
        assert sum(planner["plans_by_mode"].values()) >= 1
        assert "articles" in planner["tables"]
        for table_report in planner["tables"].values():
            assert table_report["stats_state"] in {"fresh", "stale", "missing"}


class TestOutletRegistration:
    def test_register_outlet_is_idempotent(self, loaded_platform, small_scenario):
        outlet = small_scenario.outlets.outlets()[0]
        before = loaded_platform.status()["outlets"]
        loaded_platform.register_outlet(outlet)
        assert loaded_platform.status()["outlets"] == before
        assert loaded_platform.outlet_rating(outlet.domain) is outlet.rating_class
        assert loaded_platform.outlet_rating("unknown.example.com") is None
