"""Tests for the readability formulas."""

import pytest

from repro.nlp.readability import (
    automated_readability_index,
    coleman_liau_index,
    flesch_kincaid_grade,
    flesch_reading_ease,
    gunning_fog,
    readability_report,
    smog_index,
    text_statistics,
)

SIMPLE = "The cat sat. The dog ran. We saw it all. It was fun to see."
COMPLEX = (
    "Notwithstanding the epidemiological uncertainties, the intergovernmental "
    "organisations promulgated comprehensive recommendations concerning "
    "internationally coordinated pharmaceutical interventions and immunological "
    "surveillance infrastructures."
)


def test_text_statistics_counts():
    stats = text_statistics(SIMPLE)
    assert stats.sentences == 4
    assert stats.words == 15
    assert stats.syllables >= stats.words  # every word has at least one syllable
    assert stats.complex_words == 0


def test_empty_text_yields_zero_scores():
    report = readability_report("")
    assert report.score == 0.0
    assert flesch_reading_ease("") == 0.0
    assert gunning_fog("") == 0.0


def test_simple_text_is_easier_than_complex_text():
    assert flesch_reading_ease(SIMPLE) > flesch_reading_ease(COMPLEX)
    assert flesch_kincaid_grade(SIMPLE) < flesch_kincaid_grade(COMPLEX)
    assert gunning_fog(SIMPLE) < gunning_fog(COMPLEX)
    assert smog_index(SIMPLE) < smog_index(COMPLEX)
    assert automated_readability_index(SIMPLE) < automated_readability_index(COMPLEX)
    assert coleman_liau_index(SIMPLE) < coleman_liau_index(COMPLEX)


def test_composite_score_is_in_unit_interval_and_ordered():
    simple_report = readability_report(SIMPLE)
    complex_report = readability_report(COMPLEX)
    for report in (simple_report, complex_report):
        assert 0.0 <= report.score <= 1.0
    assert simple_report.score > complex_report.score


def test_grade_levels_dict_has_all_metrics():
    report = readability_report(SIMPLE)
    grades = report.grade_levels()
    assert set(grades) == {
        "flesch_kincaid_grade",
        "gunning_fog",
        "smog_index",
        "automated_readability_index",
        "coleman_liau_index",
    }


def test_statistics_reuse_matches_recomputation():
    stats = text_statistics(SIMPLE)
    assert flesch_reading_ease(SIMPLE) == pytest.approx(flesch_reading_ease(SIMPLE, stats))
    assert gunning_fog(SIMPLE) == pytest.approx(gunning_fog(SIMPLE, stats))
