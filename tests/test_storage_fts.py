"""Unit tests for the full-text search subsystem.

Segment codec, index semantics (ranking, prefixes, deletes, LSN idempotence),
DFS durability (flush / manifest / rescan recovery), the CDC-fed indexer's
exactly-once contract, and the platform/service surface.
"""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.config import PlatformConfig, StorageConfig
from repro.core.platform import SciLensPlatform
from repro.errors import FtsError, StorageError
from repro.models import Article
from repro.storage.fts import (
    FtsIndex,
    FtsIndexer,
    Segment,
    build_segment_from_docs,
    parse_query,
)
from repro.storage.fts.segments import TOMBSTONE_LEN
from repro.storage.faults import FaultInjector
from repro.storage.warehouse.blocks import wrap_payload
from repro.storage.warehouse.dfs import DistributedFileSystem
from repro.streaming.broker import MessageBroker


def make_dfs() -> DistributedFileSystem:
    return DistributedFileSystem(n_nodes=3, replication=2)


# ------------------------------------------------------------ segment codec


class TestSegmentCodec:
    def test_roundtrip_docs_terms_positions(self):
        data = build_segment_from_docs(
            3,
            [
                ("b", 2, ["red", "fox", "red"]),
                ("a", 1, ["fox", "jumps"]),
            ],
        )
        segment = Segment(data)
        assert segment.segment_id == 3
        assert segment.doc_ids == ["a", "b"]  # sorted by doc id
        assert list(segment.lsns) == [1, 2]
        assert list(segment.lens) == [2, 3]
        assert segment.terms == ["fox", "jumps", "red"]
        ordinals, tfs = segment.term_tfs("red")
        assert list(ordinals) == [1] and list(tfs) == [2]
        assert segment.term_positions("red") == {1: (0, 2)}
        assert segment.term_positions("fox") == {0: (0,), 1: (1,)}
        assert segment.term_tfs("absent") == (pytest.approx([]), pytest.approx([]))

    def test_tombstones_travel_inside_segments(self):
        data = build_segment_from_docs(0, [("gone", 5, None), ("kept", 6, ["x"])])
        segment = Segment(data)
        entries = list(segment.doc_entries())
        assert ("gone", 5, TOMBSTONE_LEN) in entries
        assert ("kept", 6, 1) in entries

    def test_terms_with_prefix(self):
        data = build_segment_from_docs(
            0, [("d", 1, ["apple", "applied", "apply", "banana"])]
        )
        segment = Segment(data)
        assert segment.terms_with_prefix("appl") == ["apple", "applied", "apply"]
        assert segment.terms_with_prefix("z") == []
        assert segment.terms_with_prefix("") == segment.terms

    def test_rejects_foreign_payload(self):
        import json

        header = json.dumps({"kind": "columnar", "format": 4}).encode("utf-8")
        alien = wrap_payload(len(header).to_bytes(4, "big") + header, 6)
        with pytest.raises(FtsError):
            Segment(alien)


# --------------------------------------------------------------- index core


class TestFtsIndex:
    def build(self):
        index = FtsIndex("t", flush_docs=None)
        index.add("rare", text="the quokka smiled")
        index.add("common1", text="the cat sat on the mat")
        index.add("common2", text="a cat and another cat")
        return index

    def test_rarer_terms_score_higher(self):
        index = self.build()
        (doc, score), = index.search("quokka")
        assert doc == "rare" and score > 0
        cat_hits = index.search("cat")
        assert {doc for doc, _ in cat_hits} == {"common1", "common2"}
        # Two occurrences outscore one (same doc length ballpark — assert order).
        assert cat_hits[0][0] == "common2"

    def test_and_semantics(self):
        index = self.build()
        assert index.match_ids("cat mat") == {"common1"}
        assert index.match_ids("cat quokka") == set()

    def test_prefix_query(self):
        index = self.build()
        assert index.match_ids("quok*") == {"rare"}
        assert index.match_ids("c*") == {"common1", "common2"}
        # A bare star is not a term.
        assert index.match_ids("*") == set()

    def test_update_replaces_postings(self):
        index = self.build()
        index.add("rare", text="now about wombats")
        assert index.match_ids("quokka") == set()
        assert index.match_ids("wombats") == {"rare"}
        assert index.doc_count == 3

    def test_delete_then_stale_update_stays_dead(self):
        index = FtsIndex("t", flush_docs=None)
        index.add("d", text="hello world", lsn=1)
        index.delete("d", lsn=5)
        assert index.match_ids("hello") == set()
        # A late, stale re-add (lower LSN) must not resurrect the doc.
        assert index.add("d", text="hello again", lsn=3) is False
        assert index.match_ids("hello") == set()
        assert index.doc_count == 0

    def test_parse_query_multi_token_chunk(self):
        terms = parse_query("state-of-the* art")
        assert [(t.term, t.prefix) for t in terms] == [
            ("state-of-the", True),
            ("art", False),
        ]


# --------------------------------------------------------------- durability


class TestDurability:
    def test_flush_writes_segment_and_manifest(self):
        dfs = make_dfs()
        index = FtsIndex("news", dfs=dfs, flush_docs=None)
        index.add("a", text="hello world")
        path = index.flush()
        assert path == "/fts/news/seg-000000.fts"
        assert dfs.exists(path)
        assert dfs.exists("/fts/news/_manifest.json")

    def test_auto_flush_at_threshold(self):
        dfs = make_dfs()
        index = FtsIndex("news", dfs=dfs, flush_docs=2)
        index.add("a", text="one")
        assert index.stats()["segments"] == 0
        index.add("b", text="two")
        assert index.stats()["segments"] == 1
        assert index.stats()["buffered_docs"] == 0

    def test_recover_adopts_clean_manifest(self):
        dfs = make_dfs()
        index = FtsIndex("news", dfs=dfs, flush_docs=None)
        index.add("a", text="hello world", lsn=7)
        index.flush()
        reopened = FtsIndex("news", dfs=dfs, flush_docs=None)
        report = reopened.recover()
        assert report["adopted"] is True and report["docs"] == 1
        assert reopened.last_lsn == 7
        assert reopened.postings_snapshot() == index.postings_snapshot()

    def test_recover_rescans_and_heals_torn_manifest(self):
        dfs = make_dfs()
        index = FtsIndex("news", dfs=dfs, flush_docs=None)
        index.add("a", text="hello world")
        index.flush()
        index.add("b", text="more words")
        index.flush()
        dfs.delete_file("/fts/news/_manifest.json")  # torn flush / lost manifest
        reopened = FtsIndex("news", dfs=dfs, flush_docs=None)
        report = reopened.recover()
        assert report["rescanned"] is True and report["segments"] == 2
        assert reopened.postings_snapshot() == index.postings_snapshot()
        # The rescan healed the manifest: the next recovery adopts it.
        assert FtsIndex("news", dfs=dfs).recover()["adopted"] is True

    def test_rescan_cannot_resurrect_deleted_docs(self):
        dfs = make_dfs()
        index = FtsIndex("news", dfs=dfs, flush_docs=None)
        index.add("doomed", text="ghost posting")
        index.flush()
        index.delete("doomed")
        index.flush()
        dfs.delete_file("/fts/news/_manifest.json")
        reopened = FtsIndex("news", dfs=dfs, flush_docs=None)
        reopened.recover()
        assert reopened.match_ids("ghost") == set()
        assert reopened.doc_count == 0

    def test_failed_segment_write_leaves_buffer_reflushable(self):
        injector = FaultInjector(seed=1)
        dfs = DistributedFileSystem(n_nodes=3, replication=2, fault_injector=injector)
        index = FtsIndex("news", dfs=dfs, flush_docs=None)
        index.add("a", text="hello world")
        injector.inject("dfs.write", count=1)
        with pytest.raises(StorageError):
            index.flush()
        assert index.stats()["buffered_docs"] == 1
        assert index.match_ids("hello") == {"a"}  # buffer still serves reads
        path = index.flush()  # fault consumed: the retry succeeds
        assert path is not None and dfs.exists(path)

    def test_compact_deletes_old_segment_files(self):
        dfs = make_dfs()
        index = FtsIndex("news", dfs=dfs, flush_docs=None)
        for i in range(3):
            index.add(f"d{i}", text=f"common word{i}")
            index.flush()
        report = index.compact()
        assert report["merged"] == 3
        listing = [p for p in dfs.list_files("/fts/news") if p.endswith(".fts")]
        assert listing == ["/fts/news/seg-000003.fts"]
        assert index.match_ids("common") == {"d0", "d1", "d2"}

    def test_recover_requires_dfs(self):
        with pytest.raises(FtsError):
            FtsIndex("mem").recover()


# ------------------------------------------------------------- CDC indexer


def cdc_message(op: str, lsn: int, row: dict) -> dict:
    return {"op": op, "table": "articles", "lsn": lsn, "ts": 0.0, "row": row}


class TestFtsIndexer:
    def build(self):
        broker = MessageBroker()
        index = FtsIndex("articles", dfs=make_dfs(), flush_docs=None)
        indexer = FtsIndexer(index, broker)
        return broker, index, indexer

    def test_consumes_updates_and_deletes(self):
        broker, index, indexer = self.build()
        broker.produce("cdc.articles", cdc_message("u", 1, {"article_id": "a", "title": "hello", "text": "world"}))
        broker.produce("cdc.articles", cdc_message("u", 2, {"article_id": "b", "title": "other", "text": "doc"}))
        broker.produce("cdc.articles", cdc_message("d", 3, {"article_id": "a"}))
        report = indexer.run()
        assert report["indexed"] == 2 and report["deleted"] == 1
        assert report["segments"] == 1  # flushed before committing offsets
        assert index.match_ids("hello") == set()
        assert index.match_ids("other") == {"b"}
        assert indexer.lag() == 0

    def test_redelivery_is_exactly_once(self):
        broker, index, indexer = self.build()
        broker.produce("cdc.articles", cdc_message("u", 1, {"article_id": "a", "title": "hello", "text": ""}))
        indexer.run()
        snapshot = index.postings_snapshot()
        # Lose the offsets: replay the topic from the beginning.
        indexer.recover(redeliver=True)
        report = indexer.run()
        assert report["stale"] == 1 and report["indexed"] == 0
        assert index.postings_snapshot() == snapshot

    def test_bootstrap_backfill_then_cdc_wins(self):
        broker, index, indexer = self.build()
        indexer.bootstrap(
            [{"article_id": "a", "title": "old title", "text": ""}], lsn=10
        )
        assert index.match_ids("old") == {"a"}
        # CDC messages at or below the bootstrap LSN are duplicates…
        broker.produce("cdc.articles", cdc_message("u", 10, {"article_id": "a", "title": "old title", "text": ""}))
        # …newer ones win.
        broker.produce("cdc.articles", cdc_message("u", 11, {"article_id": "a", "title": "new title", "text": ""}))
        report = indexer.run()
        assert report["stale"] == 1 and report["indexed"] == 1
        assert index.match_ids("new") == {"a"}
        assert index.match_ids("old") == set()

    def test_rows_without_primary_key_are_skipped(self):
        broker, index, indexer = self.build()
        broker.produce("cdc.articles", cdc_message("u", 1, {"title": "no id"}))
        report = indexer.run()
        assert report["indexed"] == 0 and index.doc_count == 0


# -------------------------------------------------------- platform surface


def article(i: int, title: str, text: str = "") -> Article:
    return Article(
        article_id=f"a{i}",
        url=f"http://outlet.example/{i}",
        outlet_domain="outlet.example",
        title=title,
        published_at=datetime(2020, 3, 1 + i),
        text=text,
    )


class TestPlatformSearch:
    def test_search_articles_sees_fresh_writes(self):
        platform = SciLensPlatform()
        platform.store_article(article(0, "measles vaccine trial", "efficacy data"))
        platform.store_article(article(1, "quantum computing advance"))
        results = platform.search_articles("vaccine")
        assert [a.article_id for a, _ in results] == ["a0"]
        assert results[0][1] > 0
        # Freshness: a write after the last sync is immediately searchable.
        platform.store_article(article(2, "second vaccine study"))
        ids = {a.article_id for a, _ in platform.search_articles("vaccine")}
        assert ids == {"a0", "a2"}

    def test_deleted_articles_drop_out(self):
        from repro.storage.rdbms.expressions import col

        platform = SciLensPlatform()
        platform.store_article(article(0, "measles vaccine trial"))
        assert platform.search_articles("vaccine")
        platform.database.delete("articles", col("article_id") == "a0")
        assert platform.search_articles("vaccine") == []

    def test_migration_bootstrap_backfills_index(self):
        platform = SciLensPlatform()
        platform.store_article(article(0, "measles vaccine trial"))
        report = platform.run_daily_migration()
        assert "articles" in report.bootstrapped
        # No CDC drain needed: the bootstrap fed the index directly.
        hits = platform.search_articles("vaccine", sync=False)
        assert [a.article_id for a, _ in hits] == ["a0"]
        # Draining CDC afterwards indexes nothing new (cursor was skipped).
        assert platform.process_cdc()["fts"]["indexed"] == 0
        assert platform.fts_index.doc_count == 1

    def test_status_and_process_cdc_report_fts(self):
        platform = SciLensPlatform()
        platform.store_article(article(0, "measles vaccine trial"))
        report = platform.process_cdc()
        assert report["fts"]["indexed"] == 1
        status = platform.status()
        assert status["fts"]["enabled"] is True
        assert status["fts"]["docs"] == 1 and status["fts"]["lag"] == 0

    def test_cdc_disabled_falls_back_to_table_index(self):
        config = PlatformConfig(storage=StorageConfig(cdc_enabled=False))
        platform = SciLensPlatform(config)
        assert platform.fts_index is None
        platform.store_article(article(0, "measles vaccine trial"))
        hits = platform.search_articles("vaccine")
        assert [a.article_id for a, _ in hits] == ["a0"]

    def test_fts_disabled_raises(self):
        config = PlatformConfig(
            storage=StorageConfig(cdc_enabled=False, fts_enabled=False)
        )
        platform = SciLensPlatform(config)
        platform.store_article(article(0, "measles vaccine trial"))
        with pytest.raises(StorageError):
            platform.search_articles("vaccine")

    def test_recover_storage_reports_fts(self):
        platform = SciLensPlatform()
        platform.store_article(article(0, "measles vaccine trial"))
        platform.process_cdc()
        report = platform.recover_storage()
        assert report["fts"]["segments"] >= 1
        assert report["fts"]["indexer"]["lag"] == 0
        assert {a.article_id for a, _ in platform.search_articles("vaccine")} == {"a0"}


class TestArticlesServiceSearch:
    def test_search_route(self):
        from repro.api.articles_service import ArticlesService
        from repro.api.service import ServiceRequest

        platform = SciLensPlatform()
        platform.store_article(article(0, "measles vaccine trial"))
        platform.store_article(article(1, "quantum computing advance"))
        service = ArticlesService(platform)
        response = service.handle(
            "search",
            ServiceRequest(route="articles.search", params={"query": "vaccine"}),
        )
        assert response.ok
        assert response.payload["total"] == 1
        (hit,) = response.payload["results"]
        assert hit["article_id"] == "a0" and hit["score"] > 0

    def test_search_route_requires_query(self):
        from repro.api.articles_service import ArticlesService
        from repro.api.service import ServiceRequest

        service = ArticlesService(SciLensPlatform())
        response = service.handle(
            "search", ServiceRequest(route="articles.search", params={})
        )
        assert not response.ok
