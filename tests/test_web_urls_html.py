"""Tests for URL utilities and the HTML parser."""

import pytest

from repro.errors import ValidationError
from repro.web.html import parse_html
from repro.web.urls import domain_of, is_same_site, normalize_url, path_of, registered_domain


class TestUrls:
    def test_normalize_lowercases_and_strips_fragment(self):
        assert (
            normalize_url("HTTPS://News.Example.COM/Story/#section")
            == "https://news.example.com/Story"
        )

    def test_normalize_strips_default_ports_and_tracking_params(self):
        assert normalize_url("http://example.com:80/a?utm_source=x&id=2") == "http://example.com/a?id=2"
        assert normalize_url("https://example.com:443/a") == "https://example.com/a"

    def test_normalize_requires_absolute_url(self):
        with pytest.raises(ValidationError):
            normalize_url("/relative/path")

    def test_domain_of(self):
        assert domain_of("https://user@news.example.com:8443/x") == "news.example.com"
        with pytest.raises(ValidationError):
            domain_of("https:///nopath")

    def test_registered_domain(self):
        assert registered_domain("news.example.com") == "example.com"
        assert registered_domain("https://www.bbc.co.uk/news") == "bbc.co.uk"
        assert registered_domain("ox.ac.uk") == "ox.ac.uk"
        assert registered_domain("example.com") == "example.com"

    def test_is_same_site(self):
        assert is_same_site("https://a.example.com/x", "https://b.example.com/y")
        assert not is_same_site("https://example.com", "https://other.org")

    def test_path_of(self):
        assert path_of("https://example.com/a/b") == "/a/b"


class TestHtmlParser:
    HTML = (
        "<html><head><title>Example   Title</title>"
        '<meta name="author" content="Jane Roe">'
        '<meta property="article:published_time" content="2020-02-01T08:00:00">'
        "<style>p {color: red}</style></head>"
        "<body><h1>Example Title</h1>"
        '<p class="byline">By John Smith</p>'
        "<p>First paragraph with a <a href=\"https://nature.com/x\">study link</a>.</p>"
        "<p>Second paragraph.</p>"
        "<script>var x = 'ignore me';</script>"
        '<ul><li><a href="/relative/see-also">see also</a></li></ul>'
        "</body></html>"
    )

    def test_title_is_extracted_and_whitespace_collapsed(self):
        assert parse_html(self.HTML).title == "Example Title"

    def test_author_comes_from_meta_tag_first(self):
        assert parse_html(self.HTML).author == "Jane Roe"

    def test_byline_fallback_when_no_meta(self):
        html = self.HTML.replace('<meta name="author" content="Jane Roe">', "")
        assert parse_html(html).author == "John Smith"

    def test_paragraphs_exclude_script_and_style(self):
        document = parse_html(self.HTML)
        assert not any("ignore me" in p for p in document.paragraphs)
        assert not any("color" in p for p in document.paragraphs)
        assert any("First paragraph" in p for p in document.paragraphs)

    def test_links_keep_anchor_text(self):
        document = parse_html(self.HTML)
        hrefs = document.link_hrefs()
        assert "https://nature.com/x" in hrefs
        assert "/relative/see-also" in hrefs
        study_link = next(l for l in document.links if l.href == "https://nature.com/x")
        assert study_link.anchor_text == "study link"

    def test_meta_dictionary(self):
        document = parse_html(self.HTML)
        assert document.meta["article:published_time"] == "2020-02-01T08:00:00"

    def test_text_property_joins_paragraphs(self):
        document = parse_html(self.HTML)
        assert "First paragraph" in document.text
        assert "Second paragraph" in document.text

    def test_malformed_html_does_not_raise(self):
        document = parse_html("<p>Unclosed <a href='x'>link <div>nested")
        assert document is not None

    def test_empty_input(self):
        document = parse_html("")
        assert document.title == ""
        assert document.paragraphs == []
