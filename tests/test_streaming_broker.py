"""Tests for the message broker, producer, consumer, checkpointing and windowing."""

from datetime import datetime, timedelta

import pytest

from repro.errors import OffsetOutOfRange, StreamingError, TopicNotFound
from repro.streaming.broker import MessageBroker
from repro.streaming.checkpoint import CheckpointStore
from repro.streaming.consumer import Consumer
from repro.streaming.message import Message
from repro.streaming.producer import Producer
from repro.streaming.windowing import TumblingWindow, WindowedCounter, aggregate_by_window, window_start


class TestBroker:
    def test_create_topic_is_idempotent(self):
        broker = MessageBroker(default_partitions=2)
        broker.create_topic("postings")
        broker.create_topic("postings")
        assert broker.topics() == ["postings"]
        assert broker.topic_stats("postings").partitions == 2

    def test_produce_assigns_partition_and_offset(self):
        broker = MessageBroker(default_partitions=3)
        broker.create_topic("t")
        first = broker.produce("t", {"v": 1}, key="account-a")
        second = broker.produce("t", {"v": 2}, key="account-a")
        assert first.partition == second.partition  # same key -> same partition
        assert second.offset == first.offset + 1

    def test_unknown_topic(self):
        broker = MessageBroker()
        with pytest.raises(TopicNotFound):
            broker.produce("missing", {})
        with pytest.raises(TopicNotFound):
            broker.poll("g", "missing")

    def test_poll_and_commit_semantics(self):
        broker = MessageBroker(default_partitions=2)
        broker.create_topic("t")
        for i in range(10):
            broker.produce("t", {"i": i}, key=f"k{i}")

        first_batch = broker.poll("group", "t", max_messages=4)
        assert len(first_batch) == 4
        assert broker.lag("group", "t") == 6
        rest = broker.poll("group", "t", max_messages=100)
        assert len(rest) == 6
        assert broker.lag("group", "t") == 0
        # Independent groups see everything again.
        assert len(broker.poll("other", "t", max_messages=100)) == 10

    def test_manual_commit_allows_replay(self):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        broker.produce("t", {"i": 1})
        batch = broker.poll("g", "t", auto_commit=False)
        assert len(batch) == 1
        # Not committed: polling again redelivers.
        assert len(broker.poll("g", "t", auto_commit=False)) == 1
        broker.commit("g", "t", 0, 1)
        assert broker.poll("g", "t") == []

    def test_commit_validation(self):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        with pytest.raises(OffsetOutOfRange):
            broker.commit("g", "t", 0, 5)
        with pytest.raises(StreamingError):
            broker.commit("g", "t", 9, 0)

    def test_seek_to_beginning(self):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        broker.produce("t", {"i": 1})
        broker.poll("g", "t")
        broker.seek_to_beginning("g", "t")
        assert len(broker.poll("g", "t")) == 1

    def test_capped_polls_rotate_across_partitions(self):
        # Each poll starts its round-robin one partition later than the
        # previous one, so short polls don't repeatedly favour partition 0
        # while higher partitions starve behind the cap.
        broker = MessageBroker(default_partitions=3)
        broker.create_topic("t")
        for partition in range(3):
            for i in range(4):
                message = Message(topic="t", value={"p": partition, "i": i})
                broker._topics["t"][partition].append(
                    message.with_position(partition, i)
                )
        first_served = []
        for _ in range(3):
            batch = broker.poll("g", "t", max_messages=1)
            first_served.append(batch[0].partition)
        # Three single-message polls touch three different partitions.
        assert sorted(first_served) == [0, 1, 2]
        # And nothing is lost or duplicated overall.
        remaining = broker.poll("g", "t", max_messages=100)
        assert len(remaining) == 9
        assert broker.lag("g", "t") == 0

    def test_read_all_preserves_messages(self):
        broker = MessageBroker(default_partitions=2)
        broker.create_topic("t")
        broker.produce_many("t", [("a", {"i": 1}), ("b", {"i": 2})])
        assert len(broker.read_all("t")) == 2


class TestProducerConsumer:
    def test_producer_batches_and_flushes(self):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        producer = Producer(broker, batch_size=3)
        producer.send("t", {"i": 1})
        producer.send("t", {"i": 2})
        assert producer.pending == 2
        assert broker.topic_stats("t").total_messages == 0
        producer.send("t", {"i": 3})  # triggers automatic flush
        assert producer.pending == 0
        assert broker.topic_stats("t").total_messages == 3

    def test_producer_context_manager_flushes(self):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        with Producer(broker, batch_size=100) as producer:
            producer.send("t", {"i": 1})
        assert broker.topic_stats("t").total_messages == 1

    def test_consumer_process_is_at_least_once(self):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        for i in range(5):
            broker.produce("t", {"i": i})
        consumer = Consumer(broker, "g", ["t"])
        seen: list[int] = []
        failed_once = {"done": False}

        def failing_handler(message):
            if message.value["i"] == 3 and not failed_once["done"]:
                failed_once["done"] = True
                raise RuntimeError("transient failure")
            seen.append(message.value["i"])

        with pytest.raises(RuntimeError):
            consumer.process(failing_handler, max_messages=10)
        # Nothing was committed, so the batch is redelivered and reprocessed.
        processed = consumer.process(failing_handler, max_messages=10)
        assert processed == 5
        assert consumer.lag() == 0

    def test_consumer_requires_topics(self):
        with pytest.raises(StreamingError):
            Consumer(MessageBroker(), "g", [])

    def test_checkpoint_restores_position_across_consumers(self, tmp_path):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        for i in range(4):
            broker.produce("t", {"i": i})
        store = CheckpointStore(tmp_path / "offsets.json")
        consumer = Consumer(broker, "g", ["t"], checkpoints=store)
        consumer.commit(consumer.poll(2))

        # A fresh broker (restart) with the same data and a fresh consumer
        # using the same checkpoint store resumes from offset 2.
        broker2 = MessageBroker(default_partitions=1)
        broker2.create_topic("t")
        for i in range(4):
            broker2.produce("t", {"i": i})
        consumer2 = Consumer(broker2, "g", ["t"], checkpoints=CheckpointStore(tmp_path / "offsets.json"))
        remaining = consumer2.poll(10)
        assert [m.value["i"] for m in remaining] == [2, 3]

    def test_drain_processes_everything(self):
        broker = MessageBroker(default_partitions=2)
        broker.create_topic("t")
        for i in range(25):
            broker.produce("t", {"i": i}, key=str(i))
        consumer = Consumer(broker, "g", ["t"])
        count = consumer.drain(lambda m: None, batch_size=7)
        assert count == 25
        assert consumer.lag() == 0

    def test_stale_checkpoint_restore_never_rewinds_the_group(self, tmp_path):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        for i in range(6):
            broker.produce("t", {"i": i})
        # The checkpoint file lags the broker: it recorded offset 2, but the
        # group later committed up to 5 (e.g. offsets committed after the
        # store's last write).
        store = CheckpointStore(tmp_path / "offsets.json")
        store.save("g", "t", 0, 2)
        broker.commit("g", "t", 0, 5)

        consumer = Consumer(broker, "g", ["t"], checkpoints=store)
        # Restoring must keep the higher broker offset — the old code blindly
        # committed 2 and redelivered messages 2..4.
        assert broker.committed_offset("g", "t", 0) == 5
        assert [m.value["i"] for m in consumer.poll(10)] == [5]

    def test_checkpoint_ahead_of_broker_is_clamped_not_fatal(self, tmp_path):
        # The broker is in-memory while checkpoints persist: after a restart
        # the log is shorter (here: empty) than the checkpointed offset.
        store = CheckpointStore(tmp_path / "offsets.json")
        store.save("g", "t", 0, 5)
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        consumer = Consumer(broker, "g", ["t"], checkpoints=store)  # no raise
        assert broker.committed_offset("g", "t", 0) == 0
        broker.produce("t", {"i": "fresh"})
        assert [m.value["i"] for m in consumer.poll(10)] == ["fresh"]
        # A checkpoint for a partition the re-created topic no longer has is
        # ignored rather than fatal.
        store.save("g", "t", 7, 3)
        Consumer(broker, "g", ["t"], checkpoints=store)

    def test_checkpointed_consumer_can_subscribe_before_topic_exists(self, tmp_path):
        store = CheckpointStore(tmp_path / "offsets.json")
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("early")
        broker.produce("early", {"i": 0})
        consumer = Consumer(broker, "g", ["early", "later"], checkpoints=store)
        # The existing topic drains even while the other is still missing.
        batch = consumer.poll(10)
        assert [m.value["i"] for m in batch] == [0]
        consumer.commit(batch)
        assert consumer.lag() == 0
        broker.create_topic("later")
        broker.produce("later", {"i": 1})
        assert [m.value["i"] for m in consumer.poll(10)] == [1]

    def test_checkpoint_restore_still_advances_a_fresh_group(self, tmp_path):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("t")
        for i in range(4):
            broker.produce("t", {"i": i})
        store = CheckpointStore(tmp_path / "offsets.json")
        store.save("g", "t", 0, 3)
        Consumer(broker, "g", ["t"], checkpoints=store)
        assert broker.committed_offset("g", "t", 0) == 3

    def test_poll_budget_is_shared_across_topics(self):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("busy")
        broker.create_topic("quiet")
        for i in range(100):
            broker.produce("busy", {"i": i})
        for i in range(3):
            broker.produce("quiet", {"i": i})
        consumer = Consumer(broker, "g", ["busy", "quiet"])
        batch = consumer.poll(max_messages=10)
        topics = {m.topic for m in batch}
        # The old code filled the whole budget from the first topic.
        assert topics == {"busy", "quiet"}
        assert len(batch) == 10
        # The quiet topic's unused share flows back to the busy one.
        assert sum(1 for m in batch if m.topic == "busy") == 7
        assert sum(1 for m in batch if m.topic == "quiet") == 3

    def test_no_topic_starves_under_sustained_load(self):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("a")
        broker.create_topic("b")
        broker.create_topic("c")
        for i in range(500):
            broker.produce("a", {"i": i})
        for i in range(5):
            broker.produce("b", {"i": i})
            broker.produce("c", {"i": i})
        consumer = Consumer(broker, "g", ["a", "b", "c"])

        # Sustained load: topic "a" keeps receiving more than one batch can
        # hold.  Every subscribed topic must still drain within a few cycles.
        drained_at: dict[str, int] = {}
        for cycle in range(1, 5):
            consumer.commit(consumer.poll(max_messages=12))
            broker.produce("a", {"refill": cycle})
            for topic in ("b", "c"):
                if topic not in drained_at and broker.lag("g", topic) == 0:
                    drained_at[topic] = cycle
        assert drained_at.get("b") is not None, "topic b starved"
        assert drained_at.get("c") is not None, "topic c starved"

    def test_poll_budget_never_exceeded_and_order_preserved_per_topic(self):
        broker = MessageBroker(default_partitions=1)
        broker.create_topic("x")
        broker.create_topic("y")
        for i in range(20):
            broker.produce("x", {"i": i})
            broker.produce("y", {"i": i})
        consumer = Consumer(broker, "g", ["x", "y"])
        seen: dict[str, list[int]] = {"x": [], "y": []}
        while True:
            batch = consumer.poll(max_messages=7)
            if not batch:
                break
            assert len(batch) <= 7
            for message in batch:
                seen[message.topic].append(message.value["i"])
            consumer.commit(batch)
        assert seen["x"] == list(range(20))
        assert seen["y"] == list(range(20))


class TestWindowing:
    def test_window_start_alignment(self):
        origin = datetime(2020, 1, 15)
        ts = datetime(2020, 1, 17, 13, 45)
        assert window_start(ts, timedelta(days=1), origin) == datetime(2020, 1, 17)

    def test_window_start_accepts_timezone_aware_timestamps(self):
        from datetime import timezone

        ts = datetime(2020, 1, 17, 13, 45, tzinfo=timezone.utc)
        start = window_start(ts, timedelta(days=1))
        assert start == datetime(2020, 1, 17, tzinfo=timezone.utc)
        assert start.tzinfo is timezone.utc
        # The same instant with a different UTC offset lands in the same window.
        shifted = ts.astimezone(timezone(timedelta(hours=5, minutes=30)))
        assert window_start(shifted, timedelta(days=1)) == start
        # Naive timestamps keep working exactly as before.
        assert window_start(datetime(2020, 1, 17, 13, 45), timedelta(days=1)) == datetime(2020, 1, 17)

    def test_windowed_counter_accepts_aware_events(self):
        from datetime import timezone

        counter = WindowedCounter(timedelta(hours=1))
        counter.add(datetime(2020, 1, 15, 9, 30, tzinfo=timezone.utc), "low")
        counter.add(datetime(2020, 1, 15, 9, 45, tzinfo=timezone.utc), "low")
        assert counter.count(datetime(2020, 1, 15, 9, tzinfo=timezone.utc), "low") == 2

    def test_tumbling_window_contains(self):
        window = TumblingWindow(start=datetime(2020, 1, 15), duration=timedelta(days=1))
        assert window.contains(datetime(2020, 1, 15, 23, 59))
        assert not window.contains(datetime(2020, 1, 16))

    def test_windowed_counter_series(self):
        counter = WindowedCounter(timedelta(days=1), origin=datetime(2020, 1, 15))
        counter.add(datetime(2020, 1, 15, 9), "low")
        counter.add(datetime(2020, 1, 15, 18), "low")
        counter.add(datetime(2020, 1, 16, 10), "high")
        assert counter.count(datetime(2020, 1, 15), "low") == 2
        assert counter.totals_by_group() == {"low": 2, "high": 1}
        assert len(counter.windows()) == 2
        assert counter.series("low")[0][1] == 2

    def test_aggregate_by_window(self):
        events = [
            (datetime(2020, 1, 15, 8), 10),
            (datetime(2020, 1, 15, 20), 20),
            (datetime(2020, 1, 16, 9), 5),
        ]
        result = aggregate_by_window(events, timedelta(days=1), sum, origin=datetime(2020, 1, 15))
        assert result[datetime(2020, 1, 15)] == 30
        assert result[datetime(2020, 1, 16)] == 5

    def test_invalid_window_duration(self):
        with pytest.raises(StreamingError):
            WindowedCounter(timedelta(seconds=0))
