"""Regression tests for the migration freshness path.

Covers the PR-5 correctness fixes: the ``== watermark`` boundary (late rows
sharing the watermark timestamp used to be skipped forever), and tz-aware
datetime handling in ``prune_migrated_rows`` / the migration job's default
"now" (``datetime.utcnow()`` is naive and deprecated).
"""

from datetime import datetime, timedelta, timezone

import pytest

from repro.storage.migration import MigrationJob, prune_migrated_rows
from repro.storage.rdbms.database import Database
from repro.storage.rdbms.schema import Column, ColumnType, TableSchema
from repro.storage.warehouse import Warehouse


def _db(rows=()):
    db = Database()
    schema = TableSchema(
        name="articles",
        primary_key="article_id",
        columns=(
            Column("article_id", ColumnType.TEXT, nullable=False),
            Column("outlet", ColumnType.TEXT),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )
    db.create_table(schema)
    for row in rows:
        db.insert("articles", row)
    return db


def _row(article_id, created_at, outlet="x.example.com"):
    return {"article_id": article_id, "outlet": outlet, "created_at": created_at}


class TestWatermarkBoundary:
    def test_late_row_sharing_the_watermark_timestamp_is_not_lost(self):
        ts = datetime(2020, 2, 1, 12, 30)
        db = _db([_row("a0", ts - timedelta(hours=1)), _row("a1", ts)])
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")
        assert job.run().migrated_rows["articles"] == 2
        assert job.watermark("articles") == ts

        # A late row arrives with *exactly* the watermark timestamp (e.g. two
        # events ingested in the same clock tick, one committed after the
        # run).  The old ``timestamp > watermark`` filter skipped it forever.
        db.insert("articles", _row("a2-late", ts))
        report = job.run()
        assert report.migrated_rows["articles"] == 1
        assert warehouse.table("articles").row_count() == 3

    def test_boundary_rows_are_never_duplicated(self):
        ts = datetime(2020, 2, 1, 12, 30)
        db = _db([_row("a0", ts)])
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")
        job.run()
        # Re-running without new data re-reads the boundary but migrates
        # nothing: the boundary row is recognised by its primary key.
        for _ in range(3):
            assert job.run().migrated_rows["articles"] == 0
        assert warehouse.table("articles").row_count() == 1

        # Several late rows at the same boundary, over several runs.
        db.insert("articles", _row("a1", ts))
        assert job.run().migrated_rows["articles"] == 1
        db.insert("articles", _row("a2", ts))
        assert job.run().migrated_rows["articles"] == 1
        assert job.run().migrated_rows["articles"] == 0
        assert warehouse.table("articles").row_count() == 3
        ids = sorted(warehouse.table("articles").read_column("article_id"))
        assert ids == ["a0", "a1", "a2"]

    def test_watermark_still_advances_past_the_boundary(self):
        ts = datetime(2020, 2, 1, 12)
        db = _db([_row("a0", ts)])
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")
        job.run()

        db.insert("articles", _row("a1", ts))                      # boundary
        db.insert("articles", _row("a2", ts + timedelta(hours=2)))  # newer
        assert job.run().migrated_rows["articles"] == 2
        assert job.watermark("articles") == ts + timedelta(hours=2)
        # The old boundary is strictly below the new watermark now; nothing
        # at the old timestamp can be re-read, nothing new is duplicated.
        assert job.run().migrated_rows["articles"] == 0
        assert warehouse.table("articles").row_count() == 3


class TestTimezoneHandling:
    def test_prune_with_aware_watermark_and_default_now(self):
        ts = datetime(2020, 2, 1, 12, tzinfo=timezone.utc)
        db = _db([_row("a0", ts)])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        job.run()
        assert job.watermark("articles").tzinfo is not None
        # The old code compared the aware watermark against a naive
        # ``datetime.utcnow()`` default and raised TypeError.
        deleted = prune_migrated_rows(db, job, "articles", keep_days=1)
        assert deleted == 1
        assert db.table("articles").row_count() == 0

    def test_prune_with_naive_watermark_and_aware_now(self):
        ts = datetime(2020, 2, 1, 12)
        db = _db([_row("a0", ts)])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        job.run()
        deleted = prune_migrated_rows(
            db, job, "articles", keep_days=1,
            now=datetime(2020, 3, 1, tzinfo=timezone.utc),
        )
        assert deleted == 1

    def test_prune_keeps_recent_rows_regardless_of_awareness(self):
        now = datetime(2020, 2, 10, tzinfo=timezone.utc)
        ts_old = datetime(2020, 2, 1, 12, tzinfo=timezone.utc)
        ts_new = datetime(2020, 2, 9, 12, tzinfo=timezone.utc)
        db = _db([_row("old", ts_old), _row("new", ts_new)])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        job.run()
        assert prune_migrated_rows(db, job, "articles", keep_days=7, now=now) == 1
        assert [r["article_id"] for r in db.query("articles").execute().rows] == ["new"]

    def test_run_and_compaction_default_now_is_tz_aware(self):
        db = _db([_row("a0", datetime(2020, 2, 1))])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        report = job.run()
        assert report.run_at.tzinfo is not None
        compaction = job.run_compaction()
        assert compaction.run_at.tzinfo is not None

    def test_explicit_now_is_preserved(self):
        db = _db([_row("a0", datetime(2020, 2, 1))])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        stamp = datetime(2020, 2, 2, 3)
        assert job.run(now=stamp).run_at == stamp


class TestNoPrimaryKeyFallback:
    def test_boundary_dedup_without_primary_key_uses_row_content(self):
        db = Database()
        schema = TableSchema(
            name="events",
            columns=(
                Column("name", ColumnType.TEXT),
                Column("created_at", ColumnType.TIMESTAMP, nullable=False),
            ),
        )
        db.create_table(schema)
        ts = datetime(2020, 2, 1, 12)
        db.insert("events", {"name": "e0", "created_at": ts})
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("events")
        assert job.run().migrated_rows["events"] == 1
        assert job.run().migrated_rows["events"] == 0
        # A *different* row at the boundary timestamp still migrates.
        db.insert("events", {"name": "e1", "created_at": ts})
        assert job.run().migrated_rows["events"] == 1
        assert warehouse.table("events").row_count() == 2

    def test_genuine_duplicate_rows_all_migrate(self):
        # Without a primary key, two identical rows are two real events; the
        # boundary bookkeeping is a multiset, so only the already-migrated
        # number of copies is skipped and later duplicates still land.
        db = Database()
        schema = TableSchema(
            name="events",
            columns=(
                Column("name", ColumnType.TEXT),
                Column("created_at", ColumnType.TIMESTAMP, nullable=False),
            ),
        )
        db.create_table(schema)
        ts = datetime(2020, 2, 1, 12)
        db.insert("events", {"name": "dup", "created_at": ts})
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("events")
        assert job.run().migrated_rows["events"] == 1

        # An identical duplicate event arrives late at the boundary.
        db.insert("events", {"name": "dup", "created_at": ts})
        assert job.run().migrated_rows["events"] == 1
        assert job.run().migrated_rows["events"] == 0
        assert warehouse.table("events").row_count() == 2

        # Two more identical copies in one batch migrate as two rows.
        db.insert("events", {"name": "dup", "created_at": ts})
        db.insert("events", {"name": "dup", "created_at": ts})
        assert job.run().migrated_rows["events"] == 2
        assert job.run().migrated_rows["events"] == 0
        assert warehouse.table("events").row_count() == 4
