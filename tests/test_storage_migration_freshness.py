"""Regression tests for the warehouse freshness path.

PR 6 replaced the watermark-based incremental copy with continuous CDC:
``MigrationJob.run`` only bootstrap-backfills empty warehouse tables, and
every later mutation reaches the warehouse through the WAL → broker → delta
pipeline.  These tests cover the bootstrap contract, the CDC analogue of the
old boundary bugs (late rows sharing a timestamp — trivially safe now, since
nothing filters by timestamp anymore), sync-marker bookkeeping and tz-aware
handling in ``prune_migrated_rows``.
"""

from datetime import datetime, timedelta, timezone

import pytest

from repro.errors import StorageError
from repro.storage.cdc import CdcPublisher, DeltaApplier
from repro.storage.migration import MigrationJob, prune_migrated_rows
from repro.storage.rdbms.database import Database
from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.schema import Column, ColumnType, TableSchema
from repro.storage.warehouse import Warehouse
from repro.streaming.broker import MessageBroker


def _db(rows=()):
    db = Database()
    schema = TableSchema(
        name="articles",
        primary_key="article_id",
        columns=(
            Column("article_id", ColumnType.TEXT, nullable=False),
            Column("outlet", ColumnType.TEXT),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )
    db.create_table(schema)
    for row in rows:
        db.insert("articles", row)
    return db


def _row(article_id, created_at, outlet="x.example.com"):
    return {"article_id": article_id, "outlet": outlet, "created_at": created_at}


def _wire_cdc(db, warehouse, job, bootstrap=True):
    """Bootstrap the warehouse and attach a publisher + applier to it."""
    broker = MessageBroker(default_partitions=2)
    publisher = CdcPublisher(db, broker)
    for mapping in job.mappings():
        publisher.add_mapping(mapping)
    applier = DeltaApplier(warehouse, broker, job.mappings())
    if bootstrap:
        report = job.run()
        publisher.skip_to(report.cursor_lsn)
    return publisher, applier


def _sync(publisher, applier):
    """One CDC pass: publish pending WAL records, land them as deltas."""
    publisher.publish()
    return applier.apply()


class TestBootstrap:
    def test_bootstrap_copies_once_then_defers_to_cdc(self):
        ts = datetime(2020, 2, 1, 12, 30)
        db = _db([_row("a0", ts - timedelta(hours=1)), _row("a1", ts)])
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")

        first = job.run()
        assert first.migrated_rows["articles"] == 2
        assert first.bootstrapped == ("articles",)
        assert first.cursor_lsn == db.wal_lsn()
        # The warehouse already holds rows: later runs copy nothing, even
        # though the RDBMS grew — increments belong to the CDC stream now.
        db.insert("articles", _row("a2-late", ts))
        second = job.run()
        assert second.migrated_rows["articles"] == 0
        assert second.bootstrapped == ()
        assert warehouse.table("articles").row_count() == 2

    def test_full_refresh_recopies_everything(self):
        ts = datetime(2020, 2, 1, 12)
        db = _db([_row("a0", ts)])
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")
        job.run()
        db.insert("articles", _row("a1", ts + timedelta(hours=1)))

        report = job.run(full_refresh=True)
        assert report.migrated_rows["articles"] == 2
        assert report.bootstrapped == ("articles",)
        assert warehouse.table("articles").row_count() == 2
        ids = sorted(warehouse.table("articles").read_column("article_id"))
        assert ids == ["a0", "a1"]

    def test_bootstrap_records_sync_marker(self):
        ts = datetime(2020, 2, 1, 12, 30)
        db = _db([_row("a0", ts - timedelta(hours=1)), _row("a1", ts)])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        assert job.synced_through("articles") is None
        job.run()
        assert job.synced_through("articles") == ts


class TestCdcFreshness:
    def test_late_row_sharing_a_timestamp_is_not_lost(self):
        # The old watermark filter (``timestamp > watermark``) skipped late
        # rows sharing the boundary timestamp forever.  CDC never looks at
        # timestamps: every committed mutation carries an LSN and flows.
        ts = datetime(2020, 2, 1, 12, 30)
        db = _db([_row("a0", ts - timedelta(hours=1)), _row("a1", ts)])
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")
        publisher, applier = _wire_cdc(db, warehouse, job)

        db.insert("articles", _row("a2-late", ts))
        assert _sync(publisher, applier).rows == 1
        assert warehouse.table("articles").row_count() == 3

    def test_sync_is_idempotent_and_never_duplicates(self):
        ts = datetime(2020, 2, 1, 12, 30)
        db = _db([_row("a0", ts)])
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")
        publisher, applier = _wire_cdc(db, warehouse, job)

        for _ in range(3):
            assert _sync(publisher, applier).rows == 0
        assert warehouse.table("articles").row_count() == 1

        # Several late rows at the same timestamp, over several passes.
        db.insert("articles", _row("a1", ts))
        assert _sync(publisher, applier).rows == 1
        db.insert("articles", _row("a2", ts))
        assert _sync(publisher, applier).rows == 1
        assert _sync(publisher, applier).rows == 0
        assert warehouse.table("articles").row_count() == 3
        ids = sorted(warehouse.table("articles").read_column("article_id"))
        assert ids == ["a0", "a1", "a2"]

    def test_updates_and_deletes_flow_through(self):
        ts = datetime(2020, 2, 1, 12)
        db = _db([_row("a0", ts), _row("a1", ts + timedelta(hours=2))])
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")
        publisher, applier = _wire_cdc(db, warehouse, job)

        db.update("articles", col("article_id") == "a0", {"outlet": "y.example.com"})
        db.delete("articles", col("article_id") == "a1")
        _sync(publisher, applier)
        rows = list(warehouse.table("articles").scan())
        assert [r["article_id"] for r in rows] == ["a0"]
        assert rows[0]["outlet"] == "y.example.com"

    def test_applier_advances_the_sync_marker(self):
        ts = datetime(2020, 2, 1, 12)
        db = _db([_row("a0", ts)])
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")
        publisher, applier = _wire_cdc(db, warehouse, job)
        assert job.synced_through("articles") == ts

        late = ts + timedelta(hours=3)
        db.insert("articles", _row("a1", late))
        report = _sync(publisher, applier)
        assert report.synced["articles"] == late
        job.note_synced("articles", report.synced["articles"])
        assert job.synced_through("articles") == late


class TestTimezoneHandling:
    def test_prune_with_aware_marker_and_default_now(self):
        ts = datetime(2020, 2, 1, 12, tzinfo=timezone.utc)
        db = _db([_row("a0", ts)])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        job.run()
        assert job.synced_through("articles").tzinfo is not None
        # The old code compared the aware marker against a naive
        # ``datetime.utcnow()`` default and raised TypeError.
        deleted = prune_migrated_rows(db, job, "articles", keep_days=1)
        assert deleted == 1
        assert db.table("articles").row_count() == 0

    def test_prune_with_naive_marker_and_aware_now(self):
        ts = datetime(2020, 2, 1, 12)
        db = _db([_row("a0", ts)])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        job.run()
        deleted = prune_migrated_rows(
            db, job, "articles", keep_days=1,
            now=datetime(2020, 3, 1, tzinfo=timezone.utc),
        )
        assert deleted == 1

    def test_prune_keeps_recent_rows_regardless_of_awareness(self):
        now = datetime(2020, 2, 10, tzinfo=timezone.utc)
        ts_old = datetime(2020, 2, 1, 12, tzinfo=timezone.utc)
        ts_new = datetime(2020, 2, 9, 12, tzinfo=timezone.utc)
        db = _db([_row("old", ts_old), _row("new", ts_new)])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        job.run()
        assert prune_migrated_rows(db, job, "articles", keep_days=7, now=now) == 1
        assert [r["article_id"] for r in db.query("articles").execute().rows] == ["new"]

    def test_run_and_compaction_default_now_is_tz_aware(self):
        db = _db([_row("a0", datetime(2020, 2, 1))])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        report = job.run()
        assert report.run_at.tzinfo is not None
        compaction = job.run_compaction()
        assert compaction.run_at.tzinfo is not None

    def test_explicit_now_is_preserved(self):
        db = _db([_row("a0", datetime(2020, 2, 1))])
        job = MigrationJob(db, Warehouse())
        job.add_table("articles")
        stamp = datetime(2020, 2, 2, 3)
        assert job.run(now=stamp).run_at == stamp


class TestNoPrimaryKey:
    def _events_db(self):
        db = Database()
        schema = TableSchema(
            name="events",
            columns=(
                Column("name", ColumnType.TEXT),
                Column("created_at", ColumnType.TIMESTAMP, nullable=False),
            ),
        )
        db.create_table(schema)
        return db

    def test_bootstrap_works_without_a_primary_key(self):
        db = self._events_db()
        ts = datetime(2020, 2, 1, 12)
        db.insert("events", {"name": "e0", "created_at": ts})
        db.insert("events", {"name": "e0", "created_at": ts})  # real duplicate
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("events")
        assert job.run().migrated_rows["events"] == 2
        assert job.run().migrated_rows["events"] == 0
        assert warehouse.table("events").row_count() == 2

    def test_cdc_refuses_tables_without_a_primary_key(self):
        # Last-writer-wins has no row identity without a primary key, so the
        # publisher rejects the mapping instead of silently corrupting data.
        db = self._events_db()
        job = MigrationJob(db, Warehouse())
        job.add_table("events")
        publisher = CdcPublisher(db, MessageBroker(default_partitions=2))
        (mapping,) = job.mappings()
        assert mapping.primary_key is None
        with pytest.raises(StorageError):
            publisher.add_mapping(mapping)

    def test_cdc_needs_a_wal(self):
        db = Database(wal_enabled=False)
        with pytest.raises(StorageError):
            CdcPublisher(db, MessageBroker(default_partitions=2))
