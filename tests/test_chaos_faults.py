"""Seeded chaos tests: crash/restart recovery under injected faults.

Each scenario runs under several :class:`FaultInjector` seeds and asserts the
pipeline's end-state invariants rather than any particular failure schedule:

* a warehouse reopened mid-CDC (published-but-unapplied deltas outstanding)
  recovers its delta index from DFS blocks and lands the backlog with zero
  duplicate rows, bit-identical (``repr`` of float payloads included) to an
  uninterrupted run — even when the entire topic is then redelivered from
  offset 0, and even when the recovery manifest is torn and the table falls
  back to a full block rescan;
* a crash during compaction leaves no half-written replacement blocks and
  changes no query result, and the scheduled compaction job skips the failed
  table instead of aborting;
* a poisoned batch trips the applier's circuit breaker instead of
  hot-looping, and with ``skip_poisoned`` is quarantined with offsets
  committed;
* every degradation surfaces in ``SciLensPlatform.status()["health"]``.
"""

import random
from datetime import datetime, timedelta

import pytest

from repro.errors import CircuitOpenError, TransientFaultError
from repro.storage.cdc import CdcPublisher, DeltaApplier
from repro.storage.faults import CircuitBreaker, FaultInjector, RetryPolicy
from repro.storage.migration import MigrationJob
from repro.storage.rdbms.database import Database
from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.schema import Column, ColumnType, TableSchema
from repro.storage.warehouse import Warehouse
from repro.storage.warehouse.dfs import DistributedFileSystem
from repro.streaming.broker import MessageBroker

SEEDS = [11, 23, 37]

T0 = datetime(2020, 2, 1, 6)


def _articles_schema():
    return TableSchema(
        name="articles",
        primary_key="article_id",
        columns=(
            Column("article_id", ColumnType.TEXT, nullable=False),
            Column("outlet", ColumnType.TEXT),
            Column("score", ColumnType.FLOAT),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )


def _make_ops(seed, n=40):
    """A deterministic mutation script: inserts, float updates,
    cross-partition moves and deletes, derived only from ``seed``."""
    rng = random.Random(seed * 1009 + 1)
    ops = []
    alive = []
    for i in range(n):
        roll = rng.random()
        if not alive or roll < 0.45:
            key = f"a{i}"
            ops.append((
                "insert", key,
                {"outlet": f"o{rng.randrange(4)}.example.com",
                 "score": rng.random() * 100.0,
                 "created_at": T0 + timedelta(days=rng.randrange(3),
                                              minutes=rng.randrange(600))},
            ))
            alive.append(key)
        elif roll < 0.70:
            key = rng.choice(alive)
            ops.append(("update", key, {"score": rng.random() * 100.0}))
        elif roll < 0.85:
            # Cross-partition move: the row changes its partition day.
            key = rng.choice(alive)
            ops.append((
                "move", key,
                {"created_at": T0 + timedelta(days=rng.randrange(3),
                                              minutes=rng.randrange(600))},
            ))
        else:
            key = alive.pop(rng.randrange(len(alive)))
            ops.append(("delete", key, None))
    return ops


def _apply_ops(db, ops):
    for kind, key, payload in ops:
        if kind == "insert":
            db.insert("articles", {"article_id": key, **payload})
        elif kind in ("update", "move"):
            db.update("articles", col("article_id") == key, payload)
        else:
            db.delete("articles", col("article_id") == key)


def _pipeline(db, dfs=None, injector=None, policy=None, block_rows=4):
    warehouse = Warehouse(dfs, block_rows=block_rows)
    job = MigrationJob(db, warehouse)
    job.add_table("articles", sort_key=["created_at"])
    broker = MessageBroker(default_partitions=4, fault_injector=injector)
    publisher = CdcPublisher(db, broker, retry_policy=policy)
    for mapping in job.mappings():
        publisher.add_mapping(mapping)
    applier = DeltaApplier(
        warehouse, broker, job.mappings(), retry_policy=policy
    )
    report = job.run()
    publisher.skip_to(report.cursor_lsn)
    return warehouse, job, broker, publisher, applier


def _snapshot(table):
    return repr(sorted(
        (r["article_id"], r["score"], r["created_at"]) for r in table.scan()
    ))


def _reopen(db, old_warehouse, broker, block_rows=4, policy=None):
    """Rebuild the warehouse from its DFS blocks — the restart path."""
    warehouse = Warehouse(old_warehouse.dfs, block_rows=block_rows)
    job = MigrationJob(db, warehouse)
    job.add_table("articles", sort_key=["created_at"])  # triggers recover()
    applier = DeltaApplier(
        warehouse, broker, job.mappings(), retry_policy=policy
    )
    return warehouse, applier


class TestChaosRestartMidCdc:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_reopen_mid_cdc_lands_backlog_exactly_once(self, seed):
        ops = _make_ops(seed)
        half = len(ops) // 2

        # Reference: the same script, uninterrupted and fault-free.
        ref_db = Database()
        ref_db.create_table(_articles_schema())
        ref_wh, _, _, ref_pub, ref_app = _pipeline(ref_db)
        _apply_ops(ref_db, ops)
        ref_pub.publish()
        ref_app.apply()
        reference = _snapshot(ref_wh.table("articles"))

        # Chaos run: transient faults on every site, retried instantly.
        injector = FaultInjector(seed=seed)
        policy = RetryPolicy(max_attempts=8, sleep=lambda _d: None)
        for site in ("dfs.write", "broker.publish", "broker.poll"):
            injector.inject(site, probability=0.25)
        db = Database()
        db.create_table(_articles_schema())
        warehouse, _, broker, publisher, applier = _pipeline(
            db, injector=injector, policy=policy
        )
        warehouse.dfs.fault_injector = injector
        warehouse.dfs.retry_policy = policy

        _apply_ops(db, ops[:half])
        publisher.publish()
        applier.apply()

        # Crash: the warehouse process dies with published-but-unapplied
        # deltas outstanding.  A new warehouse recovers its state from the
        # DFS blocks alone; a new applier (same group) lands the backlog.
        _apply_ops(db, ops[half:])
        publisher.publish()
        warehouse, applier = _reopen(db, warehouse, broker, policy=policy)
        recovery = applier.recover()
        assert recovery["tables"]["articles"]["delta_high_water"] > 0
        applier.apply()

        table = warehouse.table("articles")
        ids = [r["article_id"] for r in table.scan()]
        assert len(ids) == len(set(ids))  # zero duplicate rows
        assert _snapshot(table) == reference

        # Full-topic redelivery after the restart changes nothing: every
        # LSN at or below the recovered high-water mark is dropped.
        assert applier.recover(redeliver=True)["redelivered"]
        assert applier.apply().rows == 0
        assert _snapshot(table) == reference

    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_torn_manifest_falls_back_to_rescan(self, seed):
        ops = _make_ops(seed)
        db = Database()
        db.create_table(_articles_schema())
        warehouse, _, broker, publisher, applier = _pipeline(db)
        _apply_ops(db, ops)
        publisher.publish()
        applier.apply()
        expected = _snapshot(warehouse.table("articles"))

        # Tear the recovery manifest: the reopened table must detect the
        # damage and rebuild its delta index from a full block rescan.
        manifest_path = warehouse.table("articles")._manifest_path()
        warehouse.dfs.write_file(manifest_path, b"{torn mid-write")
        reopened = Warehouse(warehouse.dfs, block_rows=4)
        table = reopened.create_table(
            "articles",
            columns=["article_id", "outlet", "score", "created_at"],
            partition_column="created_at", partition_by="day",
            sort_key=["created_at"], primary_key="article_id",
            recover=False,
        )
        assert table.recover()["source"] == "scan"
        assert _snapshot(table) == expected
        # The rescan reseeds the manifest, so the *next* reopen is fast path.
        assert table.recover()["source"] == "manifest"

        # Redelivering the whole topic against the rescanned index still
        # lands zero duplicates.
        job = MigrationJob(db, reopened)
        job.add_table("articles", sort_key=["created_at"])
        applier = DeltaApplier(reopened, broker, job.mappings())
        applier.recover(redeliver=True)
        assert applier.apply().rows == 0
        assert _snapshot(table) == expected


class TestChaosCompactionCrash:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_crash_during_compaction_changes_no_result(self, seed):
        ops = _make_ops(seed)
        db = Database()
        db.create_table(_articles_schema())
        warehouse, job, broker, publisher, applier = _pipeline(db)
        _apply_ops(db, ops)
        publisher.publish()
        applier.apply()
        table = warehouse.table("articles")
        before = _snapshot(table)
        files_before = set(warehouse.dfs.list_files("/warehouse/articles/"))

        injector = FaultInjector(seed=seed)
        warehouse.dfs.fault_injector = injector
        injector.inject("dfs.write", count=1)
        with pytest.raises(TransientFaultError):
            warehouse.compact(table="articles", min_blocks=2)
        # No half-written replacement blocks survive the crash...
        leftovers = set(warehouse.dfs.list_files("/warehouse/articles/"))
        assert leftovers <= files_before
        # ...and every read is unchanged, here and after a full reopen.
        assert _snapshot(table) == before
        reopened, _ = _reopen(db, warehouse, broker)
        assert _snapshot(reopened.table("articles")) == before

        # Once the fault clears, compaction completes and folds the deltas.
        injector.disarm()
        warehouse.compact(table="articles", min_blocks=2)
        assert _snapshot(table) == before
        assert table.delta_block_count() == 0

    def test_chaos_scheduled_compaction_skips_faulted_table(self):
        db = Database()
        db.create_table(_articles_schema())
        warehouse, job, _, publisher, applier = _pipeline(db)
        _apply_ops(db, _make_ops(SEEDS[0]))
        publisher.publish()
        applier.apply()
        before = _snapshot(warehouse.table("articles"))

        injector = FaultInjector()
        warehouse.dfs.fault_injector = injector
        injector.inject("dfs.write")  # every write fails until disarm
        report = job.run_compaction(min_blocks=2)  # skips, does not raise
        assert report.compacted == {}
        injector.disarm()
        assert job.run_compaction(min_blocks=2).compacted
        assert _snapshot(warehouse.table("articles")) == before


class TestChaosPoisonedBatch:
    def _poisoned_applier(self, clock, **kwargs):
        db = Database()
        db.create_table(_articles_schema())
        warehouse, job, broker, publisher, _ = _pipeline(db)
        # Poison: a CDC message for a table the warehouse does not hold.
        broker.produce(
            f"cdc.articles", key="k",
            value={"op": "u", "table": "missing", "lsn": 999,
                   "ts": 0.0, "row": {"article_id": "zz"}},
        )
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown=10.0, clock=lambda: clock["t"]
        )
        applier = DeltaApplier(
            warehouse, broker, job.mappings(), group="poison-group",
            breaker=breaker, **kwargs,
        )
        return db, warehouse, broker, publisher, applier, breaker

    def test_chaos_breaker_stops_hot_loop_on_poisoned_batch(self):
        clock = {"t": 0.0}
        injector = FaultInjector()
        db, warehouse, broker, publisher, applier, breaker = (
            self._poisoned_applier(clock)
        )
        broker.fault_injector = injector  # counts polls, injects nothing
        for _ in range(2):
            with pytest.raises(Exception):
                applier.apply()
        assert breaker.state == "open"
        polls_when_open = injector.checked("broker.poll")
        # While open, apply() refuses without touching the broker at all —
        # the poisoned batch cannot hot-loop the applier.
        for _ in range(5):
            with pytest.raises(CircuitOpenError):
                applier.apply()
        assert injector.checked("broker.poll") == polls_when_open

        # After the cooldown a probe is admitted (and fails straight back
        # to open, since the poison is still at the head of the topic).
        clock["t"] = 11.0
        with pytest.raises(Exception):
            applier.apply()
        assert breaker.state == "open"

    def test_chaos_skip_poisoned_quarantines_and_moves_on(self):
        clock = {"t": 0.0}
        db, warehouse, broker, publisher, applier, breaker = (
            self._poisoned_applier(clock, skip_poisoned=True)
        )
        report = applier.apply()  # quarantines, does not raise
        assert len(applier.quarantined) == 1
        assert "missing" in str(applier.quarantined[0]["error"])
        assert applier.lag() == 0  # offsets committed past the poison

        # Good rows arriving after the poison still land.
        db.insert("articles", {
            "article_id": "ok1", "outlet": "o.example.com",
            "score": 1.5, "created_at": T0,
        })
        publisher.publish()
        # (publisher and applier share the topic; the applier's own group
        # committed past the poison, so only the good row is delivered.)
        good = applier.apply()
        assert good.rows == 1
        assert len(applier.quarantined) == 1


class TestChaosPlatformHealth:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaos_degradation_surfaces_in_status_health(self, seed):
        from repro.core.platform import SciLensPlatform
        from repro.models import Article

        platform = SciLensPlatform()
        platform.store_article(Article(
            article_id="a1", url="https://x.example.com/1",
            outlet_domain="x.example.com", title="t",
            published_at=T0, text="body",
        ))
        # Publishing is down hard: retries exhaust, the publisher degrades
        # instead of raising, and nothing is lost (the cursor stays put).
        platform.fault_injector.inject("broker.publish")
        summary = platform.process_cdc()
        assert summary["published"] == 0
        health = platform.status()["health"]
        assert health["overall"] == "degraded"
        assert health["subsystems"]["cdc-publisher"]["state"] == "degraded"
        assert health["subsystems"]["cdc-publisher"]["retries"] > 0

        # The fault clears: the held-back records publish, land, and the
        # subsystem records its recovery.
        platform.fault_injector.disarm()
        summary = platform.process_cdc()
        assert summary["published"] > 0
        assert summary["applied_rows"] > 0
        health = platform.status()["health"]
        assert health["overall"] == "ok"
        assert health["subsystems"]["cdc-publisher"]["recoveries"] == 1


class TestChaosFtsSegmentCrash:
    """FTS index crash mid-segment-write: reopen must recover exact postings.

    A CDC-style edit history is applied with flushes whose DFS writes fail
    probabilistically.  Every failed flush "crashes" the process: a fresh
    index recovers from whatever segments landed, and the whole history is
    redelivered from the start (at-least-once) — the per-document LSN check
    must absorb the duplicates.  The final postings must equal an
    uninterrupted control run's: no ghost postings for deleted documents, no
    missing documents, identical positions.
    """

    VOCAB = [
        "vaccine", "outbreak", "measles", "quantum", "telescope",
        "climate", "carbon", "genome", "virus", "study",
    ]

    def _history(self, rng, n_ops=30):
        ops = []
        for lsn in range(1, n_ops + 1):
            doc = f"d{rng.randrange(6)}"
            if rng.random() < 0.25:
                ops.append((lsn, doc, None))  # delete
            else:
                words = rng.choices(self.VOCAB, k=rng.randrange(3, 9))
                ops.append((lsn, doc, " ".join(words)))
        return ops

    def _apply(self, index, ops):
        for lsn, doc, text in ops:
            if text is None:
                index.delete(doc, lsn=lsn)
            else:
                index.add(doc, text=text, lsn=lsn)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_mid_segment_write_recovers_exact_postings(self, seed):
        from repro.storage.fts import FtsIndex

        rng = random.Random(seed)
        ops = self._history(rng)
        control = FtsIndex("control", flush_docs=None)
        self._apply(control, ops)

        injector = FaultInjector(seed=seed)
        dfs = DistributedFileSystem(
            n_nodes=3, replication=2, fault_injector=injector
        )
        injector.inject("dfs.write", probability=0.3)
        index = FtsIndex("chaos", dfs=dfs, flush_docs=None)
        crashes = 0
        position = 0
        while position < len(ops):
            chunk = ops[position:position + 5]
            self._apply(index, chunk)
            position += len(chunk)
            try:
                index.flush()
            except TransientFaultError:
                # Crash: a new process recovers from the segments that made
                # it to the DFS, then the topic redelivers from offset 0.
                crashes += 1
                injector.disarm("dfs.write")
                index = FtsIndex("chaos", dfs=dfs, flush_docs=None)
                index.recover()
                self._apply(index, ops[:position])  # redelivery, stale-dropped
                injector.inject("dfs.write", probability=0.3)
        injector.disarm()
        index.flush()
        assert index.postings_snapshot() == control.postings_snapshot()
        assert index.doc_count == control.doc_count
        assert index.total_tokens == control.total_tokens

    @pytest.mark.parametrize("seed", SEEDS)
    def test_torn_manifest_rescan_matches_control(self, seed):
        from repro.storage.fts import FtsIndex

        rng = random.Random(seed)
        ops = self._history(rng)
        control = FtsIndex("control", flush_docs=None)
        self._apply(control, ops)

        dfs = DistributedFileSystem(n_nodes=3, replication=2)
        index = FtsIndex("chaos", dfs=dfs, flush_docs=None)
        for start in range(0, len(ops), 5):
            self._apply(index, ops[start:start + 5])
            index.flush()
        # The manifest is torn away after the last flush: recovery must fall
        # back to the directory rescan and reconstruct identical liveness.
        dfs.delete_file("/fts/chaos/_manifest.json")
        reopened = FtsIndex("chaos", dfs=dfs, flush_docs=None)
        report = reopened.recover()
        assert report["rescanned"] is True
        assert reopened.postings_snapshot() == control.postings_snapshot()
