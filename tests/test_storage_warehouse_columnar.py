"""Tests for the vectorised columnar engine: versioned block format,
dictionary encoding, block cache, selection vectors and stats-only aggregates."""

import json
from datetime import datetime, timedelta

import pytest

from repro.errors import WarehouseError
from repro.storage.warehouse.blocks import (
    BLOCK_FORMAT_VERSION,
    ColumnarBlock,
    wire_payload,
)
from repro.storage.warehouse.dfs import DataNode, DistributedFileSystem
from repro.storage.warehouse.warehouse import Warehouse, value_partitioner


def _legacy_bytes(rows: list[dict], column_names: list[str]) -> bytes:
    """Serialise rows exactly as the seed (format-1) encoder did."""

    def encode(value):
        if isinstance(value, datetime):
            return {"__ts__": value.isoformat()}
        return value

    block = ColumnarBlock.from_rows(rows, column_names)
    payload = {
        "n_rows": block.n_rows,
        "columns": {
            name: [encode(v) for v in values] for name, values in block.columns.items()
        },
        "stats": {
            name: {key: encode(value) for key, value in stat.items()}
            for name, stat in block.stats.items()
        },
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class TestBlockFormat:
    ROWS = [
        {"id": "a", "outlet": "low.example.com", "n": 1, "ts": datetime(2020, 2, 1, 8)},
        {"id": "b", "outlet": "low.example.com", "n": 5, "ts": datetime(2020, 2, 2, 9)},
        {"id": "c", "outlet": "high.example.com", "n": None, "ts": datetime(2020, 2, 2, 10)},
    ]
    COLS = ["id", "outlet", "n", "ts"]

    def test_new_format_roundtrip(self):
        block = ColumnarBlock.from_rows(self.ROWS, self.COLS)
        data = block.to_bytes()
        assert wire_payload(data)["format"] == BLOCK_FORMAT_VERSION
        restored = ColumnarBlock.from_bytes(data)
        assert restored.to_rows() == self.ROWS
        assert restored.stats == block.stats

    def test_legacy_format_still_deserialises(self):
        legacy = _legacy_bytes(self.ROWS, self.COLS)
        restored = ColumnarBlock.from_bytes(legacy)
        assert restored.to_rows() == self.ROWS
        assert restored.stats["n"]["min"] == 1 and restored.stats["n"]["max"] == 5
        # Re-serialising a legacy block produces a current-format block with
        # identical contents.
        again = ColumnarBlock.from_bytes(restored.to_bytes())
        assert again.to_rows() == self.ROWS

    def test_dictionary_encoding_is_smaller_than_seed_format(self):
        rows = [
            {"outlet": f"outlet-{i % 5}.example.com", "rating": "LOW" if i % 2 else "HIGH"}
            for i in range(512)
        ]
        block = ColumnarBlock.from_rows(rows, ["outlet", "rating"])
        new_size = len(block.to_bytes())
        seed_size = len(_legacy_bytes(rows, ["outlet", "rating"]))
        assert new_size < seed_size / 2, (new_size, seed_size)
        encoded = wire_payload(block.to_bytes())
        assert encoded["columns"]["outlet"]["enc"] == "dict"
        assert len(encoded["columns"]["outlet"]["values"]) == 5

    def test_all_null_column_roundtrip(self):
        rows = [{"a": None, "b": i} for i in range(50)]
        restored = ColumnarBlock.from_bytes(ColumnarBlock.from_rows(rows, ["a", "b"]).to_bytes())
        assert restored.column("a") == [None] * 50
        assert restored.stats["a"] == {"nulls": 50, "min": None, "max": None}

    def test_single_value_column_roundtrip(self):
        # An all-equal column is the degenerate one-run RLE case (format 3);
        # before RLE existed it would have been dictionary-encoded.
        rows = [{"a": "only"} for _ in range(40)]
        block = ColumnarBlock.from_rows(rows, ["a"])
        assert wire_payload(block.to_bytes())["columns"]["a"]["enc"] == "rle"
        assert ColumnarBlock.from_bytes(block.to_bytes()).column("a") == ["only"] * 40

    def test_mixed_type_column_preserves_types(self):
        # 1, 1.0 and True are equal in Python; the dictionary must not merge
        # them, and "1" must stay a string.
        values = [1, "1", True, 1.0, None] * 10
        rows = [{"a": v} for v in values]
        restored = ColumnarBlock.from_bytes(ColumnarBlock.from_rows(rows, ["a"]).to_bytes())
        for original, decoded in zip(values, restored.column("a")):
            assert decoded == original and type(decoded) is type(original)

    def test_equal_but_distinct_values_keep_their_own_dictionary_slot(self):
        from datetime import timezone
        utc_noon = datetime(2020, 1, 1, 12, tzinfo=timezone.utc)
        plus1_1pm = datetime(2020, 1, 1, 13, tzinfo=timezone(timedelta(hours=1)))
        assert utc_noon == plus1_1pm  # same instant, different wall time/tzinfo
        values = [utc_noon, plus1_1pm, -0.0, 0.0] * 10
        rows = [{"v": v} for v in values]
        restored = ColumnarBlock.from_bytes(ColumnarBlock.from_rows(rows, ["v"]).to_bytes())
        for original, decoded in zip(values, restored.column("v")):
            assert repr(decoded) == repr(original)

    def test_tuple_values_skip_the_dictionary_and_decode_per_row(self):
        # Tuples are hashable but JSON-decode as lists; a shared dictionary
        # slot would alias one list across all equal rows.
        rows = [{"pair": (1, 2)} for _ in range(30)]
        block = ColumnarBlock.from_rows(rows, ["pair"])
        assert wire_payload(block.to_bytes())["columns"]["pair"]["enc"] == "plain"
        decoded = ColumnarBlock.from_bytes(block.to_bytes()).column("pair")
        assert decoded == [[1, 2]] * 30
        assert decoded[0] is not decoded[1]  # every row owns its object

    def test_unhashable_values_fall_back_to_plain(self):
        rows = [{"topics": ["covid19", "health"]} for _ in range(30)]
        block = ColumnarBlock.from_rows(rows, ["topics"])
        assert wire_payload(block.to_bytes())["columns"]["topics"]["enc"] == "plain"
        assert ColumnarBlock.from_bytes(block.to_bytes()).column("topics") == [
            ["covid19", "health"]
        ] * 30

    def test_high_cardinality_timestamps_use_typed_encoding(self):
        rows = [{"ts": datetime(2020, 1, 1) + timedelta(hours=i)} for i in range(200)]
        block = ColumnarBlock.from_rows(rows, ["ts"])
        assert wire_payload(block.to_bytes())["columns"]["ts"]["enc"] == "typed"
        assert ColumnarBlock.from_bytes(block.to_bytes()).to_rows() == rows


def _table(block_rows=4, n=12, cache_blocks=64):
    warehouse = Warehouse(block_rows=block_rows, cache_blocks=cache_blocks)
    table = warehouse.create_table(
        "t", ["article_id", "outlet", "created_at", "reactions"], "created_at"
    )
    table.append(
        {
            "article_id": f"a{i}",
            "outlet": "low" if i % 2 else "high",
            "created_at": datetime(2020, 1, 15) + timedelta(days=i % 3),
            "reactions": i,
        }
        for i in range(n)
    )
    return warehouse, table


class TestVectorisedScan:
    def test_scan_columns_matches_row_scan(self):
        _, table = _table()
        vectorised = []
        for block in table.scan_columns(
            ["article_id", "reactions"], range_filters=[("reactions", 3, 9)]
        ):
            vectorised.extend(zip(block["article_id"], block["reactions"]))
        row_at_a_time = [
            (row["article_id"], row["reactions"])
            for row in table.scan(
                columns=["article_id", "reactions"],
                predicate=lambda r: 3 <= r["reactions"] <= 9,
            )
        ]
        assert sorted(vectorised) == sorted(row_at_a_time)

    def test_filter_column_does_not_need_projection(self):
        _, table = _table()
        values = []
        for block in table.scan_columns(
            ["article_id"], column_predicates={"outlet": lambda v: v == "low"}
        ):
            assert set(block) == {"article_id"}
            values.extend(block["article_id"])
        expected = [r["article_id"] for r in table.scan(predicate=lambda r: r["outlet"] == "low")]
        assert sorted(values) == sorted(expected)

    def test_scan_filtered_builds_rows_lazily(self):
        _, table = _table()
        rows = list(
            table.scan_filtered(
                columns=["article_id", "outlet"],
                range_filters=[("reactions", 10, None)],
            )
        )
        assert rows == [
            {"article_id": "a10", "outlet": "high"},
            {"article_id": "a11", "outlet": "low"},
        ]

    def test_multi_column_zone_filters_skip_blocks(self):
        warehouse, table = _table(block_rows=2, n=12)
        before = warehouse.dfs.read_count
        blocks = list(
            table.scan_columns(
                ["article_id"],
                range_filters=[("reactions", 10, None), ("outlet", "high", "low")],
            )
        )
        reads = warehouse.dfs.read_count - before
        assert reads < table.block_count()  # zone stats pruned most blocks
        assert sum(len(b["article_id"]) for b in blocks) == 2

    def test_null_values_never_match_bounded_filters(self):
        warehouse = Warehouse()
        table = warehouse.create_table("n", ["created_at", "x"], "created_at")
        table.append(
            [
                {"created_at": datetime(2020, 1, 1), "x": None},
                {"created_at": datetime(2020, 1, 1), "x": 5},
            ]
        )
        out = [b["x"] for b in table.scan_columns(["x"], range_filters=[("x", 0, None)])]
        assert out == [[5]]

    def test_range_filter_on_unorderable_values_raises_warehouse_error(self):
        warehouse = Warehouse()
        table = warehouse.create_table("u", ["created_at", "x"], "created_at")
        table.append(
            [
                {"created_at": datetime(2020, 1, 1), "x": 3},
                {"created_at": datetime(2020, 1, 1), "x": "9"},
            ]
        )
        with pytest.raises(WarehouseError):
            list(table.scan_columns(["x"], range_filters=[("x", 5, None)]))

    def test_unknown_columns_raise(self):
        _, table = _table()
        with pytest.raises(WarehouseError):
            list(table.scan_columns(["missing"]))
        with pytest.raises(WarehouseError):
            list(table.scan_columns(["article_id"], range_filters=[("missing", 0, 1)]))

    def test_read_column_reads_arrays_directly(self):
        warehouse, table = _table(block_rows=4, n=8)
        values = table.read_column("reactions")
        assert sorted(values) == list(range(8))
        with pytest.raises(WarehouseError):
            table.read_column("missing")


class TestAggregates:
    def test_stats_only_aggregates_do_not_read_blocks(self):
        warehouse, table = _table(block_rows=4, n=12)
        before = warehouse.dfs.read_count
        result = table.aggregate(
            {
                "total": ("count", "*"),
                "n_outlets": ("count", "outlet"),
                "lo": ("min", "reactions"),
                "hi": ("max", "reactions"),
            }
        )
        assert warehouse.dfs.read_count == before
        assert result == {"total": 12, "n_outlets": 12, "lo": 0, "hi": 11}

    def test_stats_only_falls_back_on_mixed_type_columns(self):
        warehouse = Warehouse()
        table = warehouse.create_table("m", ["created_at", "x"], "created_at")
        table.append(
            [
                {"created_at": datetime(2020, 1, 1), "x": 3},
                {"created_at": datetime(2020, 1, 1), "x": "9"},
            ]
        )
        before = warehouse.dfs.read_count
        with pytest.raises(WarehouseError):
            # Mixed int/str genuinely has no ordering: the fall-back path
            # surfaces that rather than silently answering None from stats.
            table.aggregate({"lo": ("min", "x")})
        assert warehouse.dfs.read_count > before  # stats were inconclusive: blocks read

    def test_filtered_group_by_count(self):
        _, table = _table(n=12)
        grouped = table.aggregate(
            {"n": ("count", "*")},
            range_filters=[("reactions", 4, None)],
            group_by="outlet",
        )
        assert grouped == {"high": {"n": 4}, "low": {"n": 4}}

    def test_group_key_transform_and_sum_avg(self):
        _, table = _table(n=12)
        grouped = table.aggregate(
            {"n": ("count", "*"), "total": ("sum", "reactions"), "mean": ("avg", "reactions")},
            group_by="created_at",
            group_key=lambda ts: ts.date().isoformat(),
        )
        assert set(grouped) == {"2020-01-15", "2020-01-16", "2020-01-17"}
        day0 = grouped["2020-01-15"]
        assert day0["n"] == 4 and day0["total"] == 0 + 3 + 6 + 9
        assert day0["mean"] == day0["total"] / 4

    def test_empty_table_and_bad_function(self):
        warehouse = Warehouse()
        table = warehouse.create_table("e", ["created_at", "x"], "created_at")
        assert table.aggregate({"n": ("count", "*"), "lo": ("min", "x")}) == {
            "n": 0,
            "lo": None,
        }
        with pytest.raises(WarehouseError):
            table.aggregate({"n": ("median", "x")})
        with pytest.raises(WarehouseError):
            table.aggregate({"n": ("sum", "*")})

    def test_unhashable_group_by_values_raise_warehouse_error(self):
        warehouse = Warehouse()
        table = warehouse.create_table("g", ["created_at", "topics"], "created_at")
        table.append([{"created_at": datetime(2020, 1, 1), "topics": ["covid19"]}])
        with pytest.raises(WarehouseError):
            table.aggregate({"n": ("count", "*")}, group_by="topics")
        # group_key is the escape hatch for list-valued columns.
        grouped = table.aggregate(
            {"n": ("count", "*")}, group_by="topics", group_key=lambda t: tuple(t or ())
        )
        assert grouped == {("covid19",): {"n": 1}}

    def test_aggregate_validates_filter_columns_before_io(self):
        warehouse, table = _table()
        before = warehouse.dfs.read_count
        with pytest.raises(WarehouseError):
            table.aggregate({"n": ("count", "*")}, range_filters=[("typo", 0, None)])
        with pytest.raises(WarehouseError):
            table.aggregate({"n": ("count", "*")}, column_predicates={"typo": bool})
        assert warehouse.dfs.read_count == before


class TestBlockCache:
    def test_repeated_reads_hit_the_cache(self):
        warehouse, table = _table(block_rows=4, n=12)
        table.read_column("reactions")
        after_first = warehouse.dfs.read_count
        table.read_column("reactions")
        list(table.scan_columns(["outlet"]))
        assert warehouse.dfs.read_count == after_first
        info = table.cache_info()
        assert info["hits"] > 0 and info["entries"] == table.block_count()

    def test_drop_partition_invalidates_cache(self):
        warehouse, table = _table(block_rows=4, n=12)
        table.read_column("reactions")
        assert table.cache_info()["entries"] > 0
        table.drop_partition("2020-01-15")
        assert table.cache_info()["entries"] < table.cache_info()["capacity"]
        # Fresh rows in the same partition are visible (no stale cache entry).
        table.append([{"article_id": "z", "outlet": "new", "created_at": datetime(2020, 1, 15), "reactions": 99}])
        assert 99 in table.read_column("reactions", partitions=["2020-01-15"])
        assert table.read_column("outlet", partitions=["2020-01-15"]) == ["new"]

    def test_drop_table_clears_cache(self):
        warehouse, table = _table()
        table.read_column("outlet")
        warehouse.drop_table("t")
        assert len(table._cache) == 0

    def test_lru_eviction_respects_capacity(self):
        warehouse, table = _table(block_rows=2, n=12, cache_blocks=2)
        table.read_column("reactions")
        info = table.cache_info()
        assert info["entries"] <= 2
        # Row-at-a-time scan streams without polluting the cache.
        warehouse2, table2 = _table(block_rows=2, n=12)
        list(table2.scan())
        assert table2.cache_info()["entries"] == 0

    def test_scan_results_unaffected_by_caller_mutation(self):
        _, table = _table(block_rows=4, n=8)
        first = next(table.scan_columns(["reactions"]))
        first["reactions"].clear()
        again = next(table.scan_columns(["reactions"]))
        assert len(again["reactions"]) > 0

    def test_scan_filtered_rows_own_their_mutable_values(self):
        warehouse = Warehouse()
        table = warehouse.create_table("tags", ["created_at", "topics"], "created_at")
        table.append([{"created_at": datetime(2020, 1, 1), "topics": ["covid19"]}])
        row = next(table.scan_filtered())
        row["topics"].append("mutated")
        assert next(table.scan_filtered())["topics"] == ["covid19"]
        assert next(table.scan_columns(["topics"]))["topics"] == [["covid19"]]

    def test_nested_mutables_are_deep_copied(self):
        warehouse = Warehouse()
        table = warehouse.create_table("meta", ["created_at", "meta"], "created_at")
        table.append([{"created_at": datetime(2020, 1, 1), "meta": [{"x": 0}]}])
        row = next(table.scan_filtered())
        row["meta"][0]["x"] = 999
        assert next(table.scan_filtered())["meta"] == [{"x": 0}]
        table.read_column("meta")[0][0]["x"] = 999
        assert table.read_column("meta") == [[{"x": 0}]]

    def test_read_column_values_own_their_mutable_values(self):
        warehouse = Warehouse()
        table = warehouse.create_table("tags2", ["created_at", "topics"], "created_at")
        table.append([{"created_at": datetime(2020, 1, 1), "topics": ["covid19"]}])
        table.read_column("topics")[0].append("mutated")
        assert table.read_column("topics") == [["covid19"]]
        assert [r["topics"] for r in table.scan()] == [["covid19"]]  # cached == uncached


class TestValuePartitioner:
    def test_distinct_types_get_distinct_partitions(self):
        partition = value_partitioner("k")
        assert partition({"k": "1"}) != partition({"k": 1})
        assert partition({"k": "low"}) == "low"  # strings keep natural names
        assert partition({"k": None}) == "null"

    def test_tag_shaped_strings_do_not_collide_with_tagged_keys(self):
        partition = value_partitioner("k")
        assert partition({"k": "int:1"}) != partition({"k": 1})
        # URLs are tag-shaped ("https:..."); they get the str: tag but stay
        # distinct from each other and from plain strings.
        assert partition({"k": "https://a.example.com"}) == "str:https://a.example.com"
        assert partition({"k": "2020-02-01"}) == "2020-02-01"  # dates keep natural names
        assert partition({"k": "null"}) != partition({"k": None})

    def test_numerically_equal_keys_share_a_partition(self):
        partition = value_partitioner("k")
        assert partition({"k": 1}) == partition({"k": 1.0}) == partition({"k": True})

    def test_table_level_no_collision(self):
        warehouse = Warehouse()
        table = warehouse.create_table("v", ["id", "k"], "k", partition_by="value")
        table.append([{"id": "a", "k": 1}, {"id": "b", "k": "1"}])
        assert len(table.partitions()) == 2


class TestDataNodeByteCounter:
    def test_preseeded_blocks_seed_the_counter(self):
        node = DataNode(node_id="n0", blocks={"b": b"12345"})
        assert node.used_bytes == 5
        node.drop("b")
        assert node.used_bytes == 0

    def test_store_overwrite_drop_keep_counter_exact(self):
        node = DataNode(node_id="n0")
        node.store("b1", b"12345")
        node.store("b2", b"xy")
        assert node.used_bytes == 7
        node.store("b1", b"1")  # overwrite shrinks
        assert node.used_bytes == 3
        node.drop("b2")
        node.drop("missing")  # idempotent
        assert node.used_bytes == 1
        assert node.used_bytes == sum(len(d) for d in node.blocks.values())

    def test_dfs_placement_and_stats_agree_with_running_counter(self):
        dfs = DistributedFileSystem(n_nodes=3, replication=2, block_size=8)
        dfs.write_file("/a", b"0123456789" * 3)
        dfs.delete_file("/a")
        dfs.write_file("/b", b"abc")
        expected = sum(
            sum(len(d) for d in node.blocks.values()) for node in dfs.nodes.values()
        )
        assert dfs.stats()["stored_bytes"] == float(expected)


# ======================================================================
# Format 3: run-length encoding + sort keys (clustered blocks)
# ======================================================================


class TestRunLengthEncoding:
    def test_sorted_low_change_column_uses_rle_and_roundtrips(self):
        rows = [{"k": "a"}] * 30 + [{"k": "b"}] * 20 + [{"k": None}] * 10
        block = ColumnarBlock.from_rows(rows, ["k"])
        spec = wire_payload(block.to_bytes())["columns"]["k"]
        assert spec["enc"] == "rle"
        assert spec["runs"] == [[30, "a"], [20, "b"], [10, None]]
        assert ColumnarBlock.from_bytes(block.to_bytes()).column("k") == [
            r["k"] for r in rows
        ]

    def test_all_equal_column_is_a_single_run(self):
        rows = [{"k": 7}] * 50
        block = ColumnarBlock.from_rows(rows, ["k"])
        spec = wire_payload(block.to_bytes())["columns"]["k"]
        assert spec == {"enc": "rle", "runs": [[50, 7]]}

    def test_empty_and_zero_count_runs_decode_to_nothing(self):
        from repro.storage.warehouse.blocks import _decode_column

        assert _decode_column({"enc": "rle", "runs": []}) == []
        assert _decode_column({"enc": "rle", "runs": [[0, "x"], [2, "y"]]}) == ["y", "y"]

    def test_alternating_column_skips_rle(self):
        rows = [{"k": i % 2} for i in range(40)]
        block = ColumnarBlock.from_rows(rows, ["k"])
        assert wire_payload(block.to_bytes())["columns"]["k"]["enc"] == "dict"
        assert ColumnarBlock.from_bytes(block.to_bytes()).column("k") == [
            i % 2 for i in range(40)
        ]

    def test_mixed_types_keep_their_own_runs(self):
        # 1, 1.0 and True are == but must not collapse into one run.
        values = [1] * 10 + [1.0] * 10 + [True] * 10 + [0.0] * 5 + [-0.0] * 5
        block = ColumnarBlock.from_rows([{"v": v} for v in values], ["v"])
        assert wire_payload(block.to_bytes())["columns"]["v"]["enc"] == "rle"
        decoded = ColumnarBlock.from_bytes(block.to_bytes()).column("v")
        assert [repr(v) for v in decoded] == [repr(v) for v in values]

    def test_timestamp_runs_roundtrip(self):
        ts = datetime(2020, 3, 1, 12)
        rows = [{"ts": ts}] * 25 + [{"ts": ts + timedelta(days=1)}] * 25
        block = ColumnarBlock.from_rows(rows, ["ts"])
        assert wire_payload(block.to_bytes())["columns"]["ts"]["enc"] == "rle"
        assert ColumnarBlock.from_bytes(block.to_bytes()).column("ts") == [
            r["ts"] for r in rows
        ]

    def test_list_values_are_not_rle_encoded(self):
        # A shared run object would alias one list across rows.
        rows = [{"topics": ["a"]}] * 30
        block = ColumnarBlock.from_rows(rows, ["topics"])
        assert wire_payload(block.to_bytes())["columns"]["topics"]["enc"] == "plain"
        decoded = ColumnarBlock.from_bytes(block.to_bytes()).column("topics")
        assert decoded == [["a"]] * 30 and decoded[0] is not decoded[1]

    def test_format2_payload_still_deserialises(self):
        # A block written before the format-3 bump (no sort_key, no rle).
        payload = {
            "format": 2,
            "n_rows": 3,
            "columns": {
                "k": {"enc": "dict", "values": ["x", "y"], "codes": [0, 1, 0]},
                "n": {"enc": "plain", "data": [1, 2, None]},
                "ts": {"enc": "typed", "data": [{"__ts__": "2020-01-01T00:00:00"}] * 3},
            },
            "stats": {},
        }
        block = ColumnarBlock.from_bytes(json.dumps(payload).encode())
        assert block.sort_key is None
        assert block.column("k") == ["x", "y", "x"]
        assert block.column("n") == [1, 2, None]
        assert block.column("ts") == [datetime(2020, 1, 1)] * 3
        assert block.dictionary("k") == (["x", "y"], [0, 1, 0])
        assert block.dictionary("n") is None


class TestSortKeys:
    ROWS = [
        {"k": 3, "v": "c"}, {"k": 1, "v": "a"}, {"k": None, "v": "n"}, {"k": 2, "v": "b"},
    ]

    def test_from_rows_sorts_and_records_key(self):
        block = ColumnarBlock.from_rows(self.ROWS, ["k", "v"], sort_key=["k"])
        assert block.sort_key == ("k",)
        assert block.column("k") == [None, 1, 2, 3]  # None sorts first
        assert block.column("v") == ["n", "a", "b", "c"]
        restored = ColumnarBlock.from_bytes(block.to_bytes())
        assert restored.sort_key == ("k",)
        assert restored.is_sorted_by("k") and not restored.is_sorted_by("v")

    def test_unorderable_key_values_fall_back_to_unsorted(self):
        rows = [{"k": 1}, {"k": "a"}]
        block = ColumnarBlock.from_rows(rows, ["k"], sort_key=["k"])
        assert block.sort_key is None
        assert block.column("k") == [1, "a"]  # original order kept

    def test_multi_column_sort_is_stable(self):
        rows = [
            {"a": 2, "b": 1}, {"a": 1, "b": 2}, {"a": 1, "b": 1}, {"a": 2, "b": 0},
        ]
        block = ColumnarBlock.from_rows(rows, ["a", "b"], sort_key=["a", "b"])
        assert block.to_rows() == [
            {"a": 1, "b": 1}, {"a": 1, "b": 2}, {"a": 2, "b": 0}, {"a": 2, "b": 1},
        ]

    def test_sorted_range_bisects_with_nulls_first(self):
        from repro.storage.warehouse.blocks import sorted_range

        array = [None, None, 1, 3, 3, 7, 9]
        assert sorted_range(array, 3, 7) == (3, 6)
        assert sorted_range(array, None, 3) == (2, 5)  # nulls excluded
        assert sorted_range(array, 8, None) == (6, 7)
        assert sorted_range(array, 10, None) == (7, 7)
        assert sorted_range(array, None, None) == (2, 7)
        assert sorted_range([None, 1, "x"], 0, 5) is None  # incomparable


class TestClusteredTables:
    def _make(self, read_latency=0.0, **kwargs):
        from repro.storage.warehouse.warehouse import Warehouse as _Warehouse

        dfs = DistributedFileSystem(read_latency=read_latency)
        warehouse = _Warehouse(dfs=dfs, block_rows=kwargs.pop("block_rows", 100))
        table = warehouse.create_table(
            "m", ["day", "score", "tag"], "day", partition_by="value",
            sort_key=["score"],
        )
        return warehouse, table

    def test_sort_key_must_name_existing_columns(self):
        warehouse = Warehouse()
        with pytest.raises(WarehouseError):
            warehouse.create_table("bad", ["a"], "a", sort_key=["nope"])

    def test_append_clusters_each_partition(self):
        _warehouse, table = self._make(block_rows=4)
        table.append(
            {"day": f"d{i % 2}", "score": (7 * i) % 20, "tag": f"t{i}"}
            for i in range(16)
        )
        for partition in table.partitions():
            scores = [
                row["score"]
                for row in table.scan(columns=["score"], partitions=[partition])
            ]
            # Blocks are walked in min-order and each block is sorted, and
            # the single append batch was globally sorted per partition.
            assert scores == sorted(scores)

    def test_range_filter_on_sort_key_prunes_and_early_exits(self):
        warehouse, table = self._make(block_rows=50)
        table.append(
            {"day": "d0", "score": i, "tag": f"t{i}"} for i in range(500)
        )
        assert table.block_count() == 10
        before = warehouse.dfs.read_count
        result = table.aggregate(
            {"n": ("count", "*")}, range_filters=[("score", None, 49)]
        )
        assert result == {"n": 50}
        assert warehouse.dfs.read_count - before == 1  # one block, then early-exit

    def test_scan_results_identical_to_unsorted_table(self):
        import random as _random

        rng = _random.Random(5)
        rows = [
            {"day": f"d{rng.randrange(3)}", "score": rng.randrange(100), "tag": f"t{i}"}
            for i in range(300)
        ]
        _w1, clustered = self._make(block_rows=64)
        clustered.append(rows)
        plain_wh = Warehouse(block_rows=64)
        plain = plain_wh.create_table("m", ["day", "score", "tag"], "day", partition_by="value")
        plain.append(rows)
        key = lambda r: (r["day"], r["score"], r["tag"])
        for low, high in [(None, None), (10, 60), (None, 5), (95, None)]:
            filters = [("score", low, high)] if (low, high) != (None, None) else None
            a = sorted(clustered.scan_filtered(range_filters=filters), key=key)
            b = sorted(plain.scan_filtered(range_filters=filters), key=key)
            assert a == b


# ======================================================================
# Grouped aggregation (multi-column, dictionary codes) + parallel scans
# ======================================================================


def _grouped_fixture(n=400, block_rows=64, read_latency=0.0, seed=11):
    import random as _random

    rng = _random.Random(seed)
    dfs = DistributedFileSystem(read_latency=read_latency)
    warehouse = Warehouse(dfs=dfs, block_rows=block_rows)
    table = warehouse.create_table(
        "g", ["day", "outlet", "kind", "score", "weight"], "day", partition_by="value"
    )
    table.append(
        {
            "day": f"d{i % 3}",
            "outlet": f"outlet-{rng.randrange(6)}",          # dict-encoded
            "kind": f"kind-{i}" if i % 7 == 0 else "common",  # sometimes high-card
            "score": rng.randrange(1000) if i % 11 else None,
            "weight": rng.random(),
        }
        for i in range(n)
    )
    return warehouse, table


def _row_scan_groups(table, group_cols, filters=None):
    """Reference grouped aggregation via the row-at-a-time scan."""
    groups = {}
    for row in table.scan():
        if filters and not all(
            row[c] is not None
            and (lo is None or row[c] >= lo)
            and (hi is None or row[c] <= hi)
            for c, lo, hi in filters
        ):
            continue
        key = row[group_cols[0]] if len(group_cols) == 1 else tuple(
            row[c] for c in group_cols
        )
        agg = groups.setdefault(
            key, {"n": 0, "scores": [], "weights": []}
        )
        agg["n"] += 1
        if row["score"] is not None:
            agg["scores"].append(row["score"])
        if row["weight"] is not None:
            agg["weights"].append(row["weight"])
    return groups


class TestGroupedAggregation:
    AGGS = {
        "n": ("count", "*"),
        "scored": ("count", "score"),
        "total": ("sum", "score"),
        "lo": ("min", "score"),
        "hi": ("max", "score"),
        "mean_w": ("avg", "weight"),
    }

    def _check_parity(self, table, group_by, filters=None):
        group_cols = [group_by] if isinstance(group_by, str) else list(group_by)
        got = table.aggregate(self.AGGS, group_by=group_by, range_filters=filters)
        want = _row_scan_groups(table, group_cols, filters)
        assert set(got) == set(want)
        for key, agg in want.items():
            row = got[key]
            assert row["n"] == agg["n"]
            assert row["scored"] == len(agg["scores"])
            assert row["total"] == (sum(agg["scores"]) if agg["scores"] else None)
            assert row["lo"] == (min(agg["scores"]) if agg["scores"] else None)
            assert row["hi"] == (max(agg["scores"]) if agg["scores"] else None)
            if agg["weights"]:
                assert row["mean_w"] == pytest.approx(
                    sum(agg["weights"]) / len(agg["weights"])
                )

    def test_single_column_parity_with_row_scan(self):
        _, table = _grouped_fixture()
        self._check_parity(table, "outlet")

    def test_multi_column_parity_with_row_scan(self):
        _, table = _grouped_fixture()
        self._check_parity(table, ["day", "outlet"])
        self._check_parity(table, ["outlet", "kind"])

    def test_filtered_multi_column_parity(self):
        _, table = _grouped_fixture()
        self._check_parity(table, ["day", "outlet"], filters=[("score", 100, 800)])

    def test_group_key_maps_the_tuple(self):
        _, table = _grouped_fixture()
        grouped = table.aggregate(
            {"n": ("count", "*")},
            group_by=["day", "outlet"],
            group_key=lambda key: f"{key[0]}/{key[1]}",
        )
        plain = table.aggregate({"n": ("count", "*")}, group_by=["day", "outlet"])
        assert {f"{d}/{o}": row for (d, o), row in plain.items()} == grouped

    def test_grouping_by_non_dict_column_matches_dict_column_path(self):
        # "kind" is mostly one value + unique outliers → may or may not be
        # dictionary-encoded per block; parity must hold either way.
        _, table = _grouped_fixture()
        got = table.aggregate({"n": ("count", "*")}, group_by="kind")
        want = _row_scan_groups(table, ["kind"])
        assert {k: row["n"] for k, row in got.items()} == {
            k: agg["n"] for k, agg in want.items()
        }

    def test_count_distinct(self):
        _, table = _grouped_fixture()
        grouped = table.aggregate(
            {"days": ("count_distinct", "day"), "outlets": ("count_distinct", "outlet")},
            group_by="day",
        )
        for day, row in grouped.items():
            assert row["days"] == 1
            rows = [r for r in table.scan() if r["day"] == day]
            assert row["outlets"] == len({r["outlet"] for r in rows})
        total = table.aggregate({"outlets": ("count_distinct", "outlet")})
        assert total["outlets"] == len({r["outlet"] for r in table.scan()})

    def test_empty_group_by_list_rejected(self):
        _, table = _grouped_fixture(n=10)
        with pytest.raises(WarehouseError):
            table.aggregate({"n": ("count", "*")}, group_by=[])

    def test_unknown_group_column_rejected(self):
        _, table = _grouped_fixture(n=10)
        with pytest.raises(WarehouseError):
            table.aggregate({"n": ("count", "*")}, group_by=["day", "nope"])


class TestParallelScans:
    def _executors(self):
        from repro.compute.executor import LocalExecutor

        return [None, LocalExecutor(max_workers=1), LocalExecutor(max_workers=4)]

    def test_scan_columns_identical_at_any_worker_count(self):
        _, table = _grouped_fixture(read_latency=0.0005)
        results = [
            list(
                table.scan_columns(
                    ["outlet", "score"],
                    range_filters=[("score", 200, None)],
                    executor=executor,
                )
            )
            for executor in self._executors()
        ]
        assert results[0] == results[1] == results[2]

    def test_scan_filtered_identical_at_any_worker_count(self):
        _, table = _grouped_fixture(read_latency=0.0005)
        results = [
            list(table.scan_filtered(range_filters=[("score", None, 700)], executor=ex))
            for ex in self._executors()
        ]
        assert results[0] == results[1] == results[2]

    def test_aggregate_identical_at_any_worker_count_including_float_sums(self):
        _, table = _grouped_fixture(n=600, read_latency=0.0005)
        results = [
            table.aggregate(
                {"n": ("count", "*"), "w": ("sum", "weight"), "mean": ("avg", "weight")},
                group_by=["day", "outlet"],
                executor=executor,
            )
            for executor in self._executors()
        ]
        # Bit-identical floats: per-block partials merge in block order.
        assert results[0] == results[1] == results[2]
        assert repr(results[0]) == repr(results[1]) == repr(results[2])

    def test_parallel_scan_on_clustered_table_is_deterministic(self):
        from repro.compute.executor import LocalExecutor

        dfs = DistributedFileSystem(read_latency=0.0005)
        warehouse = Warehouse(dfs=dfs, block_rows=32)
        table = warehouse.create_table(
            "s", ["day", "score"], "day", partition_by="value", sort_key=["score"]
        )
        table.append({"day": f"d{i % 2}", "score": (13 * i) % 200} for i in range(256))
        serial = list(table.scan_columns(["score"], range_filters=[("score", 50, 150)]))
        parallel = list(
            table.scan_columns(
                ["score"],
                range_filters=[("score", 50, 150)],
                executor=LocalExecutor(max_workers=4),
            )
        )
        assert serial == parallel

    def test_parallel_aggregate_shares_the_block_cache(self):
        from repro.compute.executor import LocalExecutor

        warehouse, table = _grouped_fixture(read_latency=0.0005)
        table.aggregate(
            {"n": ("count", "*")}, group_by="outlet",
            executor=LocalExecutor(max_workers=4),
        )
        reads_after_first = warehouse.dfs.read_count
        table.aggregate(
            {"n": ("count", "*")}, group_by="outlet",
            executor=LocalExecutor(max_workers=4),
        )
        assert warehouse.dfs.read_count == reads_after_first  # cache-served
