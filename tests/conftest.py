"""Shared fixtures.

The scenario and platform fixtures are session-scoped: they are moderately
expensive to build and every integration-style test only reads from them.
"""

from __future__ import annotations

from datetime import datetime

import pytest

from repro import PlatformConfig, SciLensPlatform
from repro.models import Article, Reaction, ReactionKind, SocialPost
from repro.simulation import CovidScenarioConfig, generate_covid_scenario

# Fixed-seed profile for CI: `pytest --hypothesis-profile=fts-ci` makes every
# property run replay the same derandomized example stream, so a red property
# job is reproducible locally with the same flag.
try:
    from hypothesis import HealthCheck
    from hypothesis import settings as hypothesis_settings

    hypothesis_settings.register_profile(
        "fts-ci",
        derandomize=True,
        max_examples=50,
        suppress_health_check=[HealthCheck.too_slow],
    )
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass


@pytest.fixture(scope="session")
def small_scenario():
    """A small but fully-featured COVID-19 scenario (6 outlets, 20 days)."""
    config = CovidScenarioConfig.small(n_outlets=6, n_days=20, random_seed=13)
    return generate_covid_scenario(config)


@pytest.fixture(scope="session")
def loaded_platform(small_scenario):
    """A platform that has ingested the small scenario through the streaming path."""
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=small_scenario.site_store,
        account_registry=small_scenario.outlets.account_registry(),
    )
    platform.register_outlets(small_scenario.outlets.outlets())
    platform.ingest_posting_events(small_scenario.posting_events())
    platform.ingest_reaction_events(small_scenario.reaction_events())
    platform.process_stream()
    platform.assign_topics()
    return platform


@pytest.fixture()
def sample_article() -> Article:
    """A single hand-written article with a by-line and mixed references."""
    html = (
        "<html><head><title>New study examines vaccine efficacy</title>"
        '<meta name="author" content="Jane Roe">'
        '<meta property="article:published_time" content="2020-02-10T09:00:00"></head>'
        "<body><h1>New study examines vaccine efficacy</h1>"
        '<p class="byline">By Jane Roe</p>'
        "<p>A peer-reviewed study published this week analysed vaccine data from 2400 "
        'participants. <a href="https://nature.com/articles/s41586">published study</a>.</p>'
        '<p>Officials provided further context. <a href="https://dailyscience.example.com/related/1">'
        "see also</a> and <a href=\"https://othernews.example.org/report/2\">external report</a>.</p>"
        "</body></html>"
    )
    return Article(
        article_id="art-test-0001",
        url="https://dailyscience.example.com/2020/02/10/vaccine-study",
        outlet_domain="dailyscience.example.com",
        title="New study examines vaccine efficacy",
        published_at=datetime(2020, 2, 10, 9, 0, 0),
        text=(
            "A peer-reviewed study published this week analysed vaccine data from 2400 "
            "participants. The analysis reports a statistically significant association "
            "between vaccination and reduced infection rates. Researchers caution that "
            "the findings require replication in larger cohorts."
        ),
        html=html,
        author="Jane Roe",
        topics=("covid19",),
    )


@pytest.fixture()
def sample_posts(sample_article) -> list[SocialPost]:
    base = datetime(2020, 2, 10, 12, 0, 0)
    return [
        SocialPost(
            post_id="p1",
            platform="twitter",
            account="@dailyscience",
            article_url=sample_article.url,
            text="New coverage of the vaccine study.",
            created_at=base,
            followers=50_000,
        ),
        SocialPost(
            post_id="p2",
            platform="twitter",
            account="@user_1",
            article_url=sample_article.url,
            text="Great article, accurate and informative. Sharing.",
            created_at=base,
            followers=300,
            reply_to="p1",
        ),
        SocialPost(
            post_id="p3",
            platform="twitter",
            account="@user_2",
            article_url=sample_article.url,
            text="Is this really true? Where is the evidence?",
            created_at=base,
            followers=120,
            reply_to="p1",
        ),
    ]


@pytest.fixture()
def sample_reactions(sample_posts) -> list[Reaction]:
    base = datetime(2020, 2, 10, 13, 0, 0)
    kinds = [ReactionKind.LIKE, ReactionKind.SHARE, ReactionKind.REPLY, ReactionKind.LIKE, ReactionKind.QUOTE]
    return [
        Reaction(
            reaction_id=f"r{i}",
            post_id=sample_posts[i % len(sample_posts)].post_id,
            kind=kinds[i % len(kinds)],
            created_at=base,
            account=f"@user_{i + 10}",
            text="Totally agree, important read." if kinds[i % len(kinds)] is ReactionKind.REPLY else "",
        )
        for i in range(10)
    ]
