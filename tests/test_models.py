"""Tests for the shared domain model."""

from datetime import datetime

import pytest

from repro.errors import ValidationError
from repro.models import (
    LIKERT_MAX,
    LIKERT_MIN,
    REVIEW_CRITERIA,
    Article,
    ExpertReview,
    Outlet,
    RatingClass,
    Reaction,
    ReactionKind,
    SocialPost,
)

NOW = datetime(2020, 2, 1, 10, 0, 0)


class TestRatingClass:
    def test_low_and_high_quality_partition(self):
        assert RatingClass.VERY_LOW.is_low_quality
        assert RatingClass.LOW.is_low_quality
        assert RatingClass.HIGH.is_high_quality
        assert RatingClass.VERY_HIGH.is_high_quality
        assert not RatingClass.MIXED.is_low_quality
        assert not RatingClass.MIXED.is_high_quality

    def test_ordinal_is_monotone(self):
        ordered = [
            RatingClass.VERY_LOW,
            RatingClass.LOW,
            RatingClass.MIXED,
            RatingClass.HIGH,
            RatingClass.VERY_HIGH,
        ]
        assert [c.ordinal for c in ordered] == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize(
        "score,expected",
        [
            (0.0, RatingClass.VERY_LOW),
            (0.3, RatingClass.LOW),
            (0.5, RatingClass.MIXED),
            (0.7, RatingClass.HIGH),
            (0.95, RatingClass.VERY_HIGH),
        ],
    )
    def test_from_score_bucketing(self, score, expected):
        assert RatingClass.from_score(score) is expected

    def test_from_score_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            RatingClass.from_score(1.5)


class TestOutlet:
    def test_valid_outlet(self):
        outlet = Outlet(domain="news.example.com", name="Example News", rating_class=RatingClass.HIGH)
        assert outlet.is_high_quality
        assert not outlet.is_low_quality

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValidationError):
            Outlet(domain="nodots", name="X", rating_class=RatingClass.LOW)

    def test_scores_must_be_in_unit_interval(self):
        with pytest.raises(ValidationError):
            Outlet(
                domain="a.example.com",
                name="A",
                rating_class=RatingClass.LOW,
                evidence_score=1.4,
            )


class TestArticle:
    def _article(self, **overrides):
        kwargs = dict(
            article_id="a1",
            url="https://news.example.com/story",
            outlet_domain="news.example.com",
            title="Title",
            published_at=NOW,
            text="some words here",
            author="Jane Roe",
        )
        kwargs.update(overrides)
        return Article(**kwargs)

    def test_byline_detection(self):
        assert self._article().has_byline
        assert not self._article(author=None).has_byline
        assert not self._article(author="   ").has_byline

    def test_relative_url_rejected(self):
        with pytest.raises(ValidationError):
            self._article(url="/story")

    def test_with_topics_returns_copy(self):
        article = self._article()
        tagged = article.with_topics(("covid19",))
        assert tagged.topics == ("covid19",)
        assert article.topics == ()

    def test_word_count(self):
        assert self._article(text="one two three").word_count() == 3


class TestSocialObjects:
    def test_reaction_weights_favour_shares(self):
        assert ReactionKind.SHARE.weight > ReactionKind.LIKE.weight

    def test_post_rejects_negative_followers(self):
        with pytest.raises(ValidationError):
            SocialPost(
                post_id="p",
                platform="twitter",
                account="@a",
                article_url="https://x.example.com/a",
                text="",
                created_at=NOW,
                followers=-1,
            )

    def test_reaction_requires_post_reference(self):
        with pytest.raises(ValidationError):
            Reaction(reaction_id="r", post_id="", kind=ReactionKind.LIKE, created_at=NOW)


class TestExpertReview:
    def _review(self, **overrides):
        kwargs = dict(
            review_id="rev1",
            article_id="a1",
            reviewer_id="expert-1",
            created_at=NOW,
            scores={"factual_accuracy": 4, "fairness": 5},
        )
        kwargs.update(overrides)
        return ExpertReview(**kwargs)

    def test_there_are_seven_criteria(self):
        assert len(REVIEW_CRITERIA) == 7

    def test_valid_review_mean(self):
        assert self._review().mean_score() == pytest.approx(4.5)

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValidationError):
            self._review(scores={"novelty": 3})

    @pytest.mark.parametrize("value", [LIKERT_MIN - 1, LIKERT_MAX + 1])
    def test_out_of_scale_score_rejected(self, value):
        with pytest.raises(ValidationError):
            self._review(scores={"fairness": value})

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValidationError):
            self._review(reviewer_weight=0.0)
