"""Tests for the index-aware query planner (access paths, top-k, pushdown)."""

import random

import pytest

from repro.errors import ColumnNotFound, StorageError
from repro.storage.rdbms.expressions import col, extract_constraints, match
from repro.storage.rdbms.index import SortedIndex
from repro.storage.rdbms.planner import (
    FTS_INDEX_SCAN,
    FULL_SCAN,
    INDEX_EQ,
    INDEX_INTERSECT,
    INDEX_RANGE,
    INDEX_UNION,
    LIKE_PREFIX,
    ORDER_INDEX,
    ORDER_SORT,
    ORDER_TOP_K,
    STATS_COST,
    STATS_HEURISTIC,
)
from repro.storage.rdbms.stats import StatsPolicy
from repro.storage.rdbms.query import Query
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.table import Table
from repro.storage.rdbms.types import ColumnType


def build_table(n_rows: int = 200, indexed: bool = True, seed: int = 11) -> Table:
    schema = TableSchema(
        name="events",
        primary_key="id",
        columns=(
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("category", ColumnType.TEXT),
            Column("score", ColumnType.FLOAT),
            Column("reactions", ColumnType.INTEGER, default=0),
        ),
    )
    table = Table(schema)
    rng = random.Random(seed)
    for i in range(n_rows):
        table.insert(
            {
                "id": i,
                "category": rng.choice(["a", "b", "c", "d"]),
                "score": rng.choice([None, round(rng.random(), 6)]),
                "reactions": rng.randrange(1000),
            }
        )
    if indexed:
        table.create_index("category", kind="hash")
        table.create_index("reactions", kind="sorted")
        table.create_index("score", kind="sorted")
    return table


class TestConstraintExtraction:
    def test_range_bounds_merge_between_style(self):
        predicate = (col("reactions") >= 10) & (col("reactions") < 50)
        constraints = extract_constraints(predicate)
        rng = constraints.ranges["reactions"]
        assert (rng.low, rng.include_low, rng.high, rng.include_high) == (10, True, 50, False)

    def test_tightest_bound_wins(self):
        predicate = (col("reactions") > 10) & (col("reactions") >= 30) & (col("reactions") <= 90)
        rng = extract_constraints(predicate).ranges["reactions"]
        assert (rng.low, rng.include_low, rng.high, rng.include_high) == (30, True, 90, True)

    def test_literal_on_left_is_flipped(self):
        rng = extract_constraints(col("reactions") < 7).ranges["reactions"]
        assert rng.high == 7 and not rng.include_high
        flipped = extract_constraints((col("reactions") > 3) & (col("reactions") < 7))
        assert flipped.ranges["reactions"].low == 3

    def test_or_of_equalities_and_in_list(self):
        predicate = ((col("category") == "a") | (col("category") == "b")) & (
            col("reactions") > 5
        )
        constraints = extract_constraints(predicate)
        [branch] = constraints.disjunctions
        assert [(atom.kind, atom.column, atom.value) for atom in branch] == [
            ("eq", "category", "a"),
            ("eq", "category", "b"),
        ]
        in_list = extract_constraints(col("category").is_in(["a", "c"]))
        [[atom]] = in_list.disjunctions
        assert (atom.kind, atom.column, atom.values) == ("in", "category", ("a", "c"))

    def test_or_branches_may_mix_ranges_and_prefixes(self):
        predicate = (col("category") == "a") | (col("reactions") > 900)
        [branch] = extract_constraints(predicate).disjunctions
        assert [(atom.kind, atom.column) for atom in branch] == [
            ("eq", "category"),
            ("range", "reactions"),
        ]
        assert branch[1].interval.low == 900 and not branch[1].interval.include_low
        liked = extract_constraints((col("category") == "a") | col("category").like("bio%"))
        [branch] = liked.disjunctions
        assert (branch[1].kind, branch[1].value) == ("prefix", "bio")

    def test_non_extractable_or_branch_is_dropped(self):
        # A leading-wildcard LIKE has no index-answerable form, so the whole
        # disjunction must be abandoned (a partial union would drop rows).
        predicate = (col("category") == "a") | col("category").like("%z")
        assert extract_constraints(predicate).is_empty()

    def test_null_equality_or_branch_disables_index_union(self):
        from repro.storage.rdbms.expressions import lit

        # ``col = NULL`` matches IS-NULL rows, which indexes never store — the
        # whole disjunction must fall back to a scan, not drop those rows.
        predicate = (col("category") == "a") | (col("category") == lit(None))
        assert extract_constraints(predicate).is_empty()
        table = build_table()
        table.insert({"id": 9999, "category": None, "reactions": 1})
        rows = table.select(predicate)
        assert any(row["id"] == 9999 for row in rows)

    def test_null_in_list_members_are_inert(self):
        constraints = extract_constraints(col("category").is_in(["a", None]))
        [[atom]] = constraints.disjunctions
        assert (atom.kind, atom.column, atom.values) == ("in", "category", ("a",))
        table = build_table()
        table.insert({"id": 9999, "category": None, "reactions": 1})
        fast = table.select(col("category").is_in(["a", None]))
        slow = [r for r in table.rows() if r["category"] == "a"]
        assert sorted(r["id"] for r in fast) == sorted(r["id"] for r in slow)


class TestAccessPathSelection:
    def test_equality_uses_index(self):
        table = build_table()
        plan = Query(table).where(col("category") == "a").explain()
        assert plan.access_path == INDEX_EQ
        assert plan.candidate_rows is not None and plan.candidate_rows < plan.table_rows

    def test_range_uses_sorted_index(self):
        table = build_table()
        plan = (
            Query(table)
            .where((col("reactions") >= 100) & (col("reactions") < 200))
            .explain()
        )
        assert plan.access_path == INDEX_RANGE
        assert plan.access_steps == ("index-range(reactions)",)
        assert plan.candidate_rows is not None and plan.candidate_rows < plan.table_rows

    def test_or_uses_index_union(self):
        table = build_table()
        plan = Query(table).where((col("category") == "a") | (col("category") == "b")).explain()
        assert plan.access_path == INDEX_UNION

    def test_combined_constraints_intersect(self):
        table = build_table()
        plan = (
            Query(table)
            .where((col("category") == "a") & (col("reactions") < 250))
            .explain()
        )
        assert plan.access_path == INDEX_INTERSECT
        assert len(plan.access_steps) == 2

    def test_unindexed_table_falls_back_to_full_scan(self):
        table = build_table(indexed=False)
        plan = Query(table).where(col("reactions") > 100).explain()
        assert plan.access_path == FULL_SCAN
        assert plan.candidate_rows is None

    def test_callable_predicate_is_full_scan(self):
        table = build_table()
        plan = Query(table).where(lambda row: row["reactions"] > 100).explain()
        assert plan.access_path == FULL_SCAN

    def test_describe_mentions_path(self):
        table = build_table()
        description = Query(table).where(col("category") == "a").explain().describe()
        assert "index-eq" in description and "events" in description

    def test_lookup_many_unions_values(self):
        table = build_table()
        hash_index = table.index("category")
        assert hash_index.lookup_many(["a", "b"]) == hash_index.lookup("a") | hash_index.lookup("b")
        sorted_index = table.index("reactions")
        values = sorted_index.range(low=0, high=10)
        assert sorted_index.lookup_many([]) == set()
        assert sorted_index.lookup_many(
            {table._rows[row_id]["reactions"] for row_id in values}
        ) >= set(values)

    def test_select_accepts_precomputed_candidates(self):
        table = build_table()
        predicate = col("category") == "a"
        plan = table.plan_access(predicate)
        assert plan.row_ids is not None
        direct = table.select(predicate)
        reused = table.select(predicate, candidate_ids=plan.row_ids)
        assert direct == reused


class TestCostBasedSelection:
    """Statistics-driven plan choice: estimates, alternatives, pushdowns."""

    def test_explain_reports_costs_and_alternatives(self):
        table = build_table()
        plan = Query(table).where(col("category") == "a").explain()
        assert plan.stats_mode == STATS_COST
        assert plan.estimated_rows is not None and plan.estimated_rows > 0
        assert plan.access_cost is not None and plan.access_cost > 0
        chosen = [alt for alt in plan.alternatives if alt.chosen]
        assert len(chosen) == 1 and chosen[0].path == INDEX_EQ
        rejected = [alt for alt in plan.alternatives if not alt.chosen]
        assert any(alt.path == FULL_SCAN for alt in rejected)
        description = plan.describe()
        assert "est=" in description and "cost=" in description and "rejected=" in description
        verbose = plan.describe_verbose()
        assert FULL_SCAN in verbose and "* index-eq" in verbose

    def test_cost_model_skips_unselective_index(self):
        # reactions < 900 keeps ~90% of rows: probing that index cannot pay
        # for itself, so only the selective category probe survives.
        table = build_table()
        plan = (
            Query(table)
            .where((col("category") == "a") & (col("reactions") < 900))
            .explain()
        )
        assert plan.access_path == INDEX_EQ
        assert plan.access_steps == ("index-eq(category)",)
        fast = table.select((col("category") == "a") & (col("reactions") < 900))
        slow = [r for r in table.rows() if r["category"] == "a" and r["reactions"] < 900]
        assert sorted(r["id"] for r in fast) == sorted(r["id"] for r in slow)

    def test_unselective_lone_range_prefers_full_scan(self):
        table = build_table()
        plan = Query(table).where(col("reactions") >= 10).explain()
        assert plan.access_path == FULL_SCAN
        assert plan.stats_mode == STATS_COST
        assert plan.candidate_rows is None
        assert any(alt.path == INDEX_RANGE for alt in plan.alternatives if not alt.chosen)

    def test_missing_stats_degrade_to_heuristic_intersect(self):
        schema = TableSchema(
            name="events",
            primary_key="id",
            columns=(
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("category", ColumnType.TEXT),
                Column("reactions", ColumnType.INTEGER, default=0),
            ),
        )
        table = Table(schema, stats_policy=StatsPolicy(auto_analyze=False))
        rng = random.Random(7)
        for i in range(100):
            table.insert({"id": i, "category": rng.choice("ab"), "reactions": i})
        table.create_index("category", kind="hash")
        table.create_index("reactions", kind="sorted")
        plan = (
            Query(table)
            .where((col("category") == "a") & (col("reactions") < 95))
            .explain()
        )
        assert plan.stats_mode == STATS_HEURISTIC
        assert plan.access_path == INDEX_INTERSECT
        table.analyze()
        plan = (
            Query(table)
            .where((col("category") == "a") & (col("reactions") < 95))
            .explain()
        )
        assert plan.stats_mode == STATS_COST

    def test_like_prefix_uses_sorted_text_index(self):
        schema = TableSchema(
            name="outlets",
            primary_key="id",
            columns=(
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("domain", ColumnType.TEXT),
            ),
        )
        table = Table(schema)
        for i in range(120):
            table.insert({"id": i, "domain": f"news-{i:03d}.example"})
        for i in range(120, 126):
            table.insert({"id": i, "domain": f"blog-{i:03d}.example"})
        table.create_index("domain", kind="sorted")
        plan = Query(table).where(col("domain").like("blog%")).explain()
        assert plan.access_path == LIKE_PREFIX
        assert plan.access_steps == ("like-prefix(domain)",)
        assert plan.candidate_rows == 6
        rows = Query(table).where(col("domain").like("blog%")).execute().rows
        assert sorted(r["id"] for r in rows) == list(range(120, 126))

    def test_like_prefix_executor_recheck_filters_suffix(self):
        # The range probe is only a superset: ``blog%e`` needs the executor's
        # re-evaluation to keep the trailing-literal part of the pattern.
        schema = TableSchema(
            name="outlets",
            primary_key="id",
            columns=(
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("domain", ColumnType.TEXT),
            ),
        )
        table = Table(schema)
        table.insert({"id": 0, "domain": "blog-alpha.example"})
        table.insert({"id": 1, "domain": "blog-beta.example"})
        table.insert({"id": 2, "domain": "blog-beta.net"})
        for i in range(3, 80):
            table.insert({"id": i, "domain": f"news-{i:03d}.example"})
        table.create_index("domain", kind="sorted")
        predicate = col("domain").like("blog%.example")
        fast = Query(table).where(predicate).execute().rows
        assert sorted(r["id"] for r in fast) == [0, 1]
        slow = [r for r in table.rows() if r["domain"].startswith("blog") and r["domain"].endswith(".example")]
        assert sorted(r["id"] for r in fast) == sorted(r["id"] for r in slow)

    def test_like_on_unindexed_or_hash_column_falls_back(self):
        table = build_table()  # category has only a hash index
        plan = Query(table).where(col("category").like("a%")).explain()
        assert plan.access_path == FULL_SCAN
        rows = Query(table).where(col("category").like("a%")).execute().rows
        assert rows == [r for r in table.rows() if r["category"].startswith("a")]

    def test_planner_metrics_record_plans_and_analyze(self):
        table = build_table()
        Query(table).where(col("category") == "a").execute()
        Query(table).where(col("reactions") >= 10).execute()
        snapshot = table.planner_metrics.snapshot()
        assert snapshot["analyze_runs"] >= 1
        assert sum(snapshot["plans_by_path"].values()) >= 2
        assert snapshot["plans_by_mode"].get(STATS_COST, 0) >= 2


class TestOrderStrategies:
    def test_order_by_limit_without_index_uses_top_k(self):
        table = build_table(indexed=False)
        plan = Query(table).order_by("reactions", descending=True).limit(5).explain()
        assert plan.order_strategy == ORDER_TOP_K

    def test_order_by_sorted_index_is_index_ordered(self):
        table = build_table()
        plan = Query(table).order_by("reactions").limit(5).explain()
        assert plan.order_strategy == ORDER_INDEX
        assert plan.access_path == ORDER_INDEX  # non-full-scan access path

    def test_index_with_nulls_is_not_index_ordered(self):
        table = build_table()  # score column has NULLs
        plan = Query(table).order_by("score").limit(5).explain()
        assert plan.order_strategy == ORDER_TOP_K

    def test_order_without_limit_is_sort_or_index(self):
        table = build_table(indexed=False)
        plan = Query(table).order_by("reactions").explain()
        assert plan.order_strategy == ORDER_SORT

    def test_top_k_results_match_full_sort(self):
        indexed, plain = build_table(), build_table(indexed=False)
        for descending in (False, True):
            fast = (
                Query(indexed)
                .order_by("reactions", descending=descending)
                .limit(17)
                .execute()
                .rows
            )
            slow = (
                Query(plain)
                .order_by("reactions", descending=descending)
                .limit(17)
                .execute()
                .rows
            )
            assert fast == slow

    def test_limit_zero_returns_no_rows_on_every_path(self):
        indexed, plain = build_table(), build_table(indexed=False)
        assert Query(indexed).order_by("reactions").limit(0).execute().rows == []
        assert Query(indexed).order_by("score").limit(0).execute().rows == []  # top-k path
        assert Query(plain).order_by("reactions").limit(0).execute().rows == []
        assert Query(indexed).limit(0).execute().rows == []

    def test_offset_with_index_ordered_scan(self):
        indexed, plain = build_table(), build_table(indexed=False)
        fast = Query(indexed).order_by("reactions").offset(10).limit(5).execute().rows
        slow = Query(plain).order_by("reactions").offset(10).limit(5).execute().rows
        assert fast == slow


class TestPlannerEquivalence:
    """The planner must return exactly what a full scan returns."""

    PREDICATES = [
        None,
        col("category") == "b",
        (col("reactions") >= 100) & (col("reactions") < 400),
        (col("reactions") > 800) | (col("reactions") < 50),
        (col("category") == "a") | (col("category") == "d"),
        col("category").is_in(["b", "c"]) & (col("reactions") <= 500),
        (col("score") > 0.5) & (col("category") == "c"),
        (col("reactions") >= 100) & (col("reactions") <= 100),
    ]

    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_randomized_equivalence(self, predicate):
        indexed, plain = build_table(seed=29), build_table(seed=29, indexed=False)
        for order, descending, limit, offset in [
            (None, False, None, 0),
            ("reactions", False, 10, 0),
            ("reactions", True, 10, 3),
            ("score", True, 7, 0),
            ("id", False, None, 0),
        ]:
            fast, slow = Query(indexed), Query(plain)
            if predicate is not None:
                fast = fast.where(predicate)
                slow = slow.where(predicate)
            if order is not None:
                fast = fast.order_by(order, descending=descending)
                slow = slow.order_by(order, descending=descending)
            if limit is not None:
                fast = fast.limit(limit)
                slow = slow.limit(limit)
            if offset:
                fast = fast.offset(offset)
                slow = slow.offset(offset)
            assert fast.execute().rows == slow.execute().rows
            assert fast.count() == slow.count()

    def test_projection_pushdown_matches_post_projection(self):
        indexed, plain = build_table(), build_table(indexed=False)
        fast = (
            Query(indexed)
            .where(col("category") == "a")
            .select("id", "category")
            .order_by("reactions", descending=True)
            .limit(5)
            .execute()
        )
        slow = (
            Query(plain)
            .where(col("category") == "a")
            .select("id", "category")
            .order_by("reactions", descending=True)
            .limit(5)
            .execute()
        )
        assert fast.rows == slow.rows
        assert set(fast.rows[0]) == {"id", "category"}


class TestIndexMaintenance:
    def test_update_rows_keeps_sorted_index_consistent(self):
        table = build_table()
        table.update_rows(col("category") == "a", {"reactions": 5000})
        expected = [row["id"] for row in table.select(lambda r: r["reactions"] == 5000)]
        via_index = [row["id"] for row in table.select(col("reactions") == 5000)]
        assert sorted(via_index) == sorted(expected)
        plan = Query(table).where(col("reactions") > 4000).explain()
        assert plan.access_path == INDEX_RANGE

    def test_delete_rows_removes_index_entries(self):
        table = build_table()
        index = table.index("reactions")
        before = len(index)
        deleted = table.delete_rows(col("reactions") < 500)
        assert deleted > 0
        assert len(index) == before - deleted
        assert table.select(col("reactions") < 500) == []

    def test_restore_rebuilds_indexes(self):
        table = build_table()
        snapshot = table.snapshot()
        table.delete_rows(col("category") == "b")
        table.restore(snapshot)
        index = table.index("reactions")
        assert isinstance(index, SortedIndex)
        assert len(index) == table.row_count()
        fast = table.select((col("reactions") >= 10) & (col("reactions") < 300))
        slow = [r for r in table.rows() if 10 <= r["reactions"] < 300]
        assert sorted(r["id"] for r in fast) == sorted(r["id"] for r in slow)

    def test_index_ordered_scan_after_deletes(self):
        indexed, plain = build_table(), build_table(indexed=False)
        indexed.delete_rows(col("reactions") > 700)
        plain.delete_rows(col("reactions") > 700)
        fast = Query(indexed).order_by("reactions", descending=True).limit(9).execute().rows
        slow = Query(plain).order_by("reactions", descending=True).limit(9).execute().rows
        assert fast == slow


class TestAggregateProjection:
    def test_projection_applies_to_aggregated_rows(self):
        table = build_table()
        result = (
            Query(table)
            .group_by("category")
            .aggregate(total=("count", "*"), top=("max", "reactions"))
            .select("category", "total")
            .execute()
        )
        assert result.rows and set(result.rows[0]) == {"category", "total"}

    def test_projection_of_unknown_aggregate_column_raises(self):
        table = build_table()
        query = (
            Query(table)
            .group_by("category")
            .aggregate(total=("count", "*"))
            .select("category", "nope")
        )
        with pytest.raises(StorageError):
            query.execute()

    def test_unknown_projection_column_still_raises(self):
        table = build_table()
        with pytest.raises(ColumnNotFound):
            Query(table).select("does_not_exist").execute()


class TestFtsAccessPath:
    """MATCH predicates served from the table-attached FTS index."""

    def build_docs(self, with_fts: bool = True, auto_analyze: bool = True) -> Table:
        schema = TableSchema(
            name="docs",
            primary_key="id",
            columns=(
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("title", ColumnType.TEXT),
                Column("body", ColumnType.TEXT),
                Column("rank", ColumnType.INTEGER, default=0),
            ),
        )
        table = Table(schema, stats_policy=StatsPolicy(auto_analyze=auto_analyze))
        corpus = [
            ("measles vaccine trial", "efficacy results published"),
            ("quantum computing advance", "qubits entangled"),
            ("vaccine hesitancy grows", "survey of parents"),
            ("local sports roundup", "the match went to extra time"),
        ]
        for i, (title, body) in enumerate(corpus):
            table.insert({"id": i, "title": title, "body": body, "rank": i * 10})
        if with_fts:
            table.create_fts_index(("title", "body"))
        table.create_index("rank", kind="sorted")
        return table

    def test_explain_shows_fts_index_scan(self):
        table = self.build_docs()
        plan = Query(table).where(match(("title", "body"), "vaccine")).explain()
        assert plan.access_path == FTS_INDEX_SCAN
        assert plan.access_steps == ("fts_index_scan(title,body)",)
        assert plan.candidate_rows == 2

    def test_fts_composes_with_range_index(self):
        # On a 4-row table the cost model rightly decides one probe is enough;
        # heuristic mode (no statistics) still intersects every usable index.
        table = self.build_docs(auto_analyze=False)
        predicate = match(("title", "body"), "vaccine") & (col("rank") >= 20)
        plan = Query(table).where(predicate).explain()
        assert plan.access_path == INDEX_INTERSECT
        assert plan.stats_mode == STATS_HEURISTIC
        assert "fts_index_scan(title,body)" in plan.access_steps
        assert "index-range(rank)" in plan.access_steps
        rows = Query(table).where(predicate).execute().rows
        assert [row["id"] for row in rows] == [2]

    def test_subset_columns_use_the_covering_index(self):
        # The index covers (title, body); MATCH on title alone is a subset,
        # so the index's candidates are a valid superset and the executor's
        # re-evaluation trims them to title-only matches.
        table = self.build_docs()
        plan = Query(table).where(match("title", "match")).explain()
        assert plan.access_path == FTS_INDEX_SCAN
        rows = Query(table).where(match("title", "match")).execute().rows
        assert rows == []  # "match" appears only in a body
        body_rows = Query(table).where(match("body", "match")).execute().rows
        assert [row["id"] for row in body_rows] == [3]

    def test_no_fts_index_falls_back_to_full_scan(self):
        table = self.build_docs(with_fts=False)
        plan = Query(table).where(match(("title", "body"), "vaccine")).explain()
        assert plan.access_path == FULL_SCAN
        rows = Query(table).where(match(("title", "body"), "vaccine")).execute().rows
        assert [row["id"] for row in rows] == [0, 2]

    def test_uncovered_column_falls_back_but_stays_correct(self):
        schema = TableSchema(
            name="notes",
            primary_key="id",
            columns=(
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("title", ColumnType.TEXT),
                Column("secret", ColumnType.TEXT),
            ),
        )
        table = Table(schema)
        table.insert({"id": 0, "title": "alpha", "secret": "omega"})
        table.create_fts_index(("title",))  # does not cover "secret"
        plan = Query(table).where(match("secret", "omega")).explain()
        assert plan.access_path == FULL_SCAN
        rows = Query(table).where(match("secret", "omega")).execute().rows
        assert [row["id"] for row in rows] == [0]

    def test_fts_equivalence_with_full_scan(self):
        indexed, plain = self.build_docs(), self.build_docs(with_fts=False)
        for query in ("vaccine", "vaccine trial", "qu*", "match", "", "!!!"):
            predicate = match(("title", "body"), query)
            fast = Query(indexed).where(predicate).execute().rows
            slow = Query(plain).where(predicate).execute().rows
            assert fast == slow

    def test_index_stays_fresh_under_mutations(self):
        table = self.build_docs()
        table.update_rows(col("id") == 1, {"title": "vaccine rollout schedule"})
        predicate = match(("title", "body"), "vaccine")
        assert {r["id"] for r in Query(table).where(predicate).execute().rows} == {0, 1, 2}
        table.delete_rows(col("id") == 0)
        assert {r["id"] for r in Query(table).where(predicate).execute().rows} == {1, 2}
