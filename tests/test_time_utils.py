"""Tests for repro._time."""

from datetime import date, datetime, timedelta

import pytest

from repro._time import (
    COVID_WINDOW_DAYS,
    COVID_WINDOW_END,
    COVID_WINDOW_START,
    clamp_to_window,
    day_index,
    day_of,
    days_between,
    hours_between,
    iter_days,
    to_datetime,
    window_days,
)


def test_covid_window_is_sixty_days():
    assert COVID_WINDOW_DAYS == 60
    assert COVID_WINDOW_START == datetime(2020, 1, 15)
    assert COVID_WINDOW_END == datetime(2020, 3, 15)


def test_to_datetime_accepts_datetime_date_str_and_timestamp():
    dt = datetime(2020, 2, 1, 12, 30)
    assert to_datetime(dt) is dt
    assert to_datetime(date(2020, 2, 1)) == datetime(2020, 2, 1)
    assert to_datetime("2020-02-01T12:30:00") == dt
    assert to_datetime(0) == datetime(1970, 1, 1)


def test_to_datetime_rejects_unsupported_types():
    with pytest.raises(TypeError):
        to_datetime(["2020-01-01"])


def test_day_of_and_day_index():
    ts = datetime(2020, 1, 20, 23, 59)
    assert day_of(ts) == date(2020, 1, 20)
    assert day_index(ts) == 5
    assert day_index(COVID_WINDOW_START) == 0


def test_iter_days_and_window_days():
    days = list(iter_days(datetime(2020, 1, 1), datetime(2020, 1, 4)))
    assert days == [date(2020, 1, 1), date(2020, 1, 2), date(2020, 1, 3)]
    assert len(window_days()) == COVID_WINDOW_DAYS


def test_clamp_to_window():
    early = datetime(2019, 12, 1)
    late = datetime(2021, 1, 1)
    inside = datetime(2020, 2, 1)
    assert clamp_to_window(early) == COVID_WINDOW_START
    assert clamp_to_window(late) < COVID_WINDOW_END
    assert clamp_to_window(inside) == inside


def test_hours_and_days_between():
    a = datetime(2020, 1, 1)
    b = a + timedelta(hours=36)
    assert hours_between(a, b) == pytest.approx(36.0)
    assert days_between(a, b) == pytest.approx(1.5)
    assert days_between(b, a) == pytest.approx(-1.5)
