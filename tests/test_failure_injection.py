"""Failure-injection tests: the "distributed and robust fashion" claims.

These tests exercise the degraded paths: missing article pages during
ingestion, data-node failures (with and without surviving replicas),
re-processing after handler crashes, corrupt checkpoints and review-derived
outlet ratings when no external ranking is available.
"""

from datetime import datetime

import pytest

from repro import PlatformConfig, SciLensPlatform
from repro.errors import StreamingError, WarehouseError
from repro.experts.reviewers import ReviewerPool
from repro.models import RatingClass
from repro.simulation import CovidScenarioConfig, generate_covid_scenario
from repro.storage.warehouse.dfs import DistributedFileSystem
from repro.streaming.checkpoint import CheckpointStore


@pytest.fixture()
def tiny_scenario():
    return generate_covid_scenario(CovidScenarioConfig.small(n_outlets=4, n_days=6, random_seed=37))


def build_platform(scenario):
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=scenario.site_store,
        account_registry=scenario.outlets.account_registry(),
    )
    platform.register_outlets(scenario.outlets.outlets())
    return platform


class TestIngestionRobustness:
    def test_missing_pages_do_not_stall_the_pipeline(self, tiny_scenario):
        platform = build_platform(tiny_scenario)
        # Remove a third of the article pages from the synthetic web: the
        # corresponding postings must be counted as scrape failures while the
        # rest of the stream keeps flowing.
        removed = 0
        for generated in tiny_scenario.articles[::3]:
            platform.site_store.remove(generated.url)
            removed += 1
        platform.ingest_posting_events(tiny_scenario.posting_events())
        platform.process_stream()
        stats = platform.extraction.stats.as_dict()
        assert stats["scrape_failures"] > 0
        assert stats["postings_seen"] == len(tiny_scenario.posts)
        assert platform.article_count() == len(tiny_scenario.articles) - removed
        assert platform.extraction.lag() == 0

    def test_malformed_events_are_counted_not_fatal(self, tiny_scenario):
        platform = build_platform(tiny_scenario)
        platform.ingest_posting_events([(None, {"garbage": True}), (None, {"post_id": "p"})])
        platform.ingest_reaction_events([(None, {"reaction_id": "r", "post_id": "p", "kind": "nope"})])
        platform.process_stream()
        assert platform.extraction.stats.malformed_events == 3
        assert platform.article_count() == 0

    def test_corrupt_checkpoint_file_is_reported(self, tmp_path):
        path = tmp_path / "offsets.json"
        path.write_text("{not json")
        with pytest.raises(StreamingError):
            CheckpointStore(path)


class TestWarehouseRobustness:
    def test_reads_survive_minority_node_failures(self, tiny_scenario):
        platform = build_platform(tiny_scenario)
        platform.ingest_posting_events(tiny_scenario.posting_events())
        platform.process_stream()
        platform.run_daily_migration()

        platform.dfs.kill_node("node-1")
        # Every partition of every table must still be readable.
        total = sum(
            platform.warehouse.table(name).row_count()
            for name in platform.warehouse.table_names()
        )
        scanned = sum(
            1
            for name in platform.warehouse.table_names()
            for _row in platform.warehouse.table(name).scan()
        )
        assert scanned == total

        # Re-replication restores the replication factor on the live nodes.
        platform.dfs.rebalance()
        assert platform.dfs.under_replicated_blocks() == []

    def test_total_replica_loss_is_detected(self):
        dfs = DistributedFileSystem(n_nodes=2, replication=2, block_size=16)
        dfs.write_file("/x", b"precious bytes")
        dfs.kill_node("node-0")
        dfs.kill_node("node-1")
        with pytest.raises(WarehouseError):
            dfs.read_file("/x")
        # Reviving a node makes the data readable again.
        dfs.revive_node("node-0")
        assert dfs.read_file("/x") == b"precious bytes"


class TestReviewDerivedRatings:
    def test_outlet_ratings_can_be_derived_from_expert_reviews(self, tiny_scenario):
        platform = build_platform(tiny_scenario)
        platform.ingest_posting_events(tiny_scenario.posting_events())
        platform.process_stream()

        # Forget the external (ACSH-style) ranking for one outlet and let the
        # experts' reviews of its articles define its quality instead.
        target = tiny_scenario.outlets.profiles[0]
        platform.outlet_ratings.pop(target.domain, None)

        pool = ReviewerPool(n_reviewers=3, random_seed=3)
        reviewed = 0
        for generated in tiny_scenario.articles:
            if generated.article.outlet_domain != target.domain or reviewed >= 3:
                continue
            article = platform.get_article_by_url(generated.url)
            for review in pool.review_article(
                article.article_id, generated.true_quality, datetime(2020, 3, 1)
            ):
                platform.add_expert_review(review)
            reviewed += 1
        assert reviewed > 0

        derived = platform.derive_outlet_ratings_from_reviews(min_reviewed_articles=1)
        assert target.domain in derived
        assert platform.outlet_rating(target.domain) is derived[target.domain]
        # The review-derived class lands on the same side of the ranking as the
        # outlet's latent quality.
        if target.evidence_score >= 0.6:
            assert derived[target.domain].is_high_quality or derived[target.domain] is RatingClass.MIXED
        if target.evidence_score <= 0.4:
            assert derived[target.domain].is_low_quality or derived[target.domain] is RatingClass.MIXED

    def test_existing_external_ratings_are_kept_unless_overwritten(self, tiny_scenario):
        platform = build_platform(tiny_scenario)
        platform.ingest_posting_events(tiny_scenario.posting_events())
        platform.process_stream()

        target = tiny_scenario.outlets.profiles[0]
        original = platform.outlet_rating(target.domain)
        article = platform.get_article_by_url(
            next(g.url for g in tiny_scenario.articles if g.article.outlet_domain == target.domain)
        )
        for review in ReviewerPool(n_reviewers=2, random_seed=9).review_article(
            article.article_id, 0.95, datetime(2020, 3, 1)
        ):
            platform.add_expert_review(review)

        platform.derive_outlet_ratings_from_reviews()
        assert platform.outlet_rating(target.domain) is original  # external ranking wins

        platform.derive_outlet_ratings_from_reviews(overwrite=True)
        assert platform.outlet_rating(target.domain) is not None
