"""Tests for the platform configuration objects."""

import pytest

from repro.config import (
    AnalyticsConfig,
    ApiConfig,
    IndicatorConfig,
    PlatformConfig,
    StorageConfig,
    StreamingConfig,
)
from repro.errors import ConfigurationError


def test_default_platform_config_validates():
    config = PlatformConfig()
    assert config.validate() is config


def test_streaming_config_rejects_bad_partitions():
    with pytest.raises(ConfigurationError):
        StreamingConfig(partitions=0).validate()
    with pytest.raises(ConfigurationError):
        StreamingConfig(max_batch_size=0).validate()


def test_storage_config_rejects_bad_replication():
    with pytest.raises(ConfigurationError):
        StorageConfig(warehouse_replication=0).validate()
    with pytest.raises(ConfigurationError):
        StorageConfig(warehouse_block_rows=0).validate()


def test_storage_config_rollup_knobs():
    # Defaults: standing roll-ups on, materialized for the paper's topic.
    config = StorageConfig()
    config.validate()
    assert config.warehouse_rollups_enabled is True
    assert config.warehouse_rollup_topic == "covid19"
    StorageConfig(warehouse_rollups_enabled=False).validate()
    with pytest.raises(ConfigurationError):
        StorageConfig(warehouse_rollup_topic="").validate()


def test_storage_config_planner_stats_knobs():
    config = StorageConfig()
    config.validate()
    assert config.rdbms_auto_analyze is True
    assert config.rdbms_histogram_buckets >= 1
    StorageConfig(rdbms_auto_analyze=False).validate()
    with pytest.raises(ConfigurationError):
        StorageConfig(rdbms_stale_fraction=0.0).validate()
    with pytest.raises(ConfigurationError):
        StorageConfig(rdbms_min_stale_writes=-1).validate()
    with pytest.raises(ConfigurationError):
        StorageConfig(rdbms_histogram_buckets=0).validate()


def test_analytics_config_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        AnalyticsConfig(migration_interval_days=0).validate()
    with pytest.raises(ConfigurationError):
        AnalyticsConfig(min_topic_probability=1.5).validate()


def test_indicator_config_rejects_negative_and_all_zero_weights():
    with pytest.raises(ConfigurationError):
        IndicatorConfig(content_weight=-1.0).validate()
    with pytest.raises(ConfigurationError):
        IndicatorConfig(
            content_weight=0, context_weight=0, social_weight=0, expert_weight=0
        ).validate()
    with pytest.raises(ConfigurationError):
        IndicatorConfig(expert_half_life_days=0).validate()


def test_api_config_rejects_negative_values():
    with pytest.raises(ConfigurationError):
        ApiConfig(cache_capacity=-1).validate()
    with pytest.raises(ConfigurationError):
        ApiConfig(cache_ttl_seconds=-0.1).validate()


def test_nested_validation_runs_from_platform_config():
    config = PlatformConfig(streaming=StreamingConfig(partitions=0))
    with pytest.raises(ConfigurationError):
        config.validate()
