"""Tests for reference classification, the synthetic site store and the scraper."""

import pytest

from repro.errors import ScrapingError
from repro.web.references import ReferenceClassifier, ReferenceType
from repro.web.scraper import ArticleScraper
from repro.web.sitestore import SiteStore

OUTLET = "dailyscience.example.com"


class TestReferenceClassifier:
    def setup_method(self):
        self.classifier = ReferenceClassifier()

    def test_scientific_domains(self):
        assert self.classifier.classify("https://www.nature.com/articles/x", OUTLET) is ReferenceType.SCIENTIFIC
        assert self.classifier.classify("https://pubmed.ncbi.nlm.nih.gov/123", OUTLET) is ReferenceType.SCIENTIFIC
        assert self.classifier.classify("https://mit.edu/lab/report", OUTLET) is ReferenceType.SCIENTIFIC

    def test_internal_references_share_the_outlet_site(self):
        assert (
            self.classifier.classify(f"https://{OUTLET}/related/1", OUTLET)
            is ReferenceType.INTERNAL
        )
        assert (
            self.classifier.classify("https://amp.dailyscience.example.com/x", OUTLET)
            is ReferenceType.INTERNAL
        )

    def test_external_references(self):
        assert (
            self.classifier.classify("https://othernews.example.org/story", OUTLET)
            is ReferenceType.EXTERNAL
        )

    def test_profile_counts_and_ratio(self):
        urls = [
            f"https://{OUTLET}/a",
            "https://nature.com/b",
            "https://who.int/c",
            "https://othernews.example.org/d",
            "not-a-url",
        ]
        profile = self.classifier.profile(urls, OUTLET)
        assert (profile.internal, profile.external, profile.scientific) == (1, 1, 2)
        assert profile.scientific_ratio == pytest.approx(0.5)
        assert profile.total == 4

    def test_empty_profile_ratio_is_zero(self):
        profile = self.classifier.profile([], OUTLET)
        assert profile.scientific_ratio == 0.0

    def test_custom_scientific_domains_extend_the_list(self):
        classifier = ReferenceClassifier(scientific_domains=["myjournal.org"])
        assert classifier.classify("https://myjournal.org/paper", OUTLET) is ReferenceType.SCIENTIFIC
        assert classifier.classify("https://nature.com/x", OUTLET) is ReferenceType.EXTERNAL


class TestSiteStore:
    def test_register_and_fetch(self):
        store = SiteStore()
        store.register("https://example.com/a", "<html><title>A</title></html>")
        page = store.fetch("https://example.com/a/")
        assert "A" in page.html
        assert store.fetch_count == 1
        assert "https://example.com/a" in store

    def test_missing_page_raises(self):
        with pytest.raises(ScrapingError):
            SiteStore().fetch("https://example.com/missing")

    def test_error_status_raises(self):
        store = SiteStore()
        store.register("https://example.com/gone", "<html></html>", status=404)
        with pytest.raises(ScrapingError):
            store.fetch("https://example.com/gone")

    def test_pages_for_domain_and_remove(self):
        store = SiteStore()
        store.register("https://a.example.com/1", "x")
        store.register("https://b.example.com/2", "y")
        assert len(list(store.pages_for_domain("a.example.com"))) == 1
        store.remove("https://a.example.com/1")
        assert len(store) == 1


class TestArticleScraper:
    HTML = (
        "<html><head><title>Vaccine study results</title>"
        '<meta name="author" content="Jane Roe">'
        '<meta property="article:published_time" content="2020-02-10T09:00:00"></head>'
        "<body><p>Body text with <a href=\"https://nature.com/x\">a study</a> and "
        '<a href="/relative">a relative link</a>.</p></body></html>'
    )

    def _scraper(self):
        store = SiteStore()
        store.register(f"https://{OUTLET}/2020/02/10/story", self.HTML)
        store.register(f"https://{OUTLET}/empty", "<html></html>")
        return ArticleScraper(store)

    def test_scrape_extracts_everything(self):
        scraped = self._scraper().scrape(f"https://{OUTLET}/2020/02/10/story")
        assert scraped.title == "Vaccine study results"
        assert scraped.author == "Jane Roe"
        assert scraped.outlet_domain == OUTLET
        assert scraped.links == ("https://nature.com/x",)
        assert scraped.published_at is not None and scraped.published_at.year == 2020
        assert scraped.has_byline
        assert "<html>" in scraped.html

    def test_scrape_empty_page_raises(self):
        with pytest.raises(ScrapingError):
            self._scraper().scrape(f"https://{OUTLET}/empty")

    def test_try_scrape_returns_none_on_failure(self):
        scraper = self._scraper()
        assert scraper.try_scrape(f"https://{OUTLET}/missing") is None
        assert scraper.try_scrape(f"https://{OUTLET}/2020/02/10/story") is not None
