"""Tests for the article-extraction streaming pipeline."""

from datetime import datetime

from repro.models import Article, Reaction, SocialPost
from repro.social.accounts import AccountRegistry, SocialAccount
from repro.streaming.broker import MessageBroker
from repro.streaming.pipeline import ArticleExtractionPipeline, article_id_for, scraped_to_article
from repro.web.scraper import ArticleScraper
from repro.web.sitestore import SiteStore

OUTLET = "dailyscience.example.com"
ARTICLE_URL = f"https://{OUTLET}/2020/02/10/story"
HTML = (
    "<html><head><title>Vaccine study results</title>"
    '<meta name="author" content="Jane Roe"></head>'
    "<body><p>Body text with <a href=\"https://nature.com/x\">a study</a>.</p></body></html>"
)


def build_pipeline(collect):
    broker = MessageBroker(default_partitions=2)
    broker.create_topic("postings")
    broker.create_topic("reactions")
    store = SiteStore()
    store.register(ARTICLE_URL, HTML)
    accounts = AccountRegistry([
        SocialAccount(handle="@dailyscience", platform="twitter", outlet_domain=OUTLET, followers=5000)
    ])
    pipeline = ArticleExtractionPipeline(
        broker=broker,
        scraper=ArticleScraper(store),
        accounts=accounts,
        on_article=collect["articles"].append,
        on_post=collect["posts"].append,
        on_reaction=collect["reactions"].append,
    )
    return broker, pipeline


def posting_event(post_id="p1", url=ARTICLE_URL, account="@dailyscience"):
    return {
        "post_id": post_id,
        "account": account,
        "article_url": url,
        "text": "New coverage",
        "created_at": "2020-02-10T12:00:00",
    }


def test_article_id_is_deterministic_and_url_normalised():
    assert article_id_for("https://EXAMPLE.com/a/") == article_id_for("https://example.com/a")


def test_pipeline_extracts_articles_posts_and_reactions():
    collected = {"articles": [], "posts": [], "reactions": []}
    broker, pipeline = build_pipeline(collected)

    broker.produce("postings", posting_event("p1"), key="@dailyscience")
    broker.produce("postings", posting_event("p2"), key="@user")
    broker.produce("reactions", {"reaction_id": "r1", "post_id": "p1", "kind": "share",
                                 "created_at": "2020-02-10T13:00:00"}, key="p1")

    processed = pipeline.process_available()
    assert processed == 3
    assert pipeline.lag() == 0

    assert len(collected["posts"]) == 2
    assert all(isinstance(p, SocialPost) for p in collected["posts"])
    # Followers resolved from the account registry for the outlet account.
    outlet_post = next(p for p in collected["posts"] if p.account == "@dailyscience")
    assert outlet_post.followers == 5000

    assert len(collected["reactions"]) == 1
    assert isinstance(collected["reactions"][0], Reaction)

    # The same article URL appears in two postings but is extracted only once.
    assert len(collected["articles"]) == 1
    article = collected["articles"][0]
    assert isinstance(article, Article)
    assert article.title == "Vaccine study results"
    assert article.has_byline
    assert article.html  # raw HTML is carried through for the context indicators

    stats = pipeline.stats.as_dict()
    assert stats["postings_seen"] == 2
    assert stats["articles_extracted"] == 1
    assert stats["scrape_failures"] == 0


def test_pipeline_counts_scrape_failures_and_malformed_events():
    collected = {"articles": [], "posts": [], "reactions": []}
    broker, pipeline = build_pipeline(collected)

    broker.produce("postings", posting_event("p1", url=f"https://{OUTLET}/missing-page"))
    broker.produce("postings", {"bogus": True})
    broker.produce("reactions", {"reaction_id": "r1", "post_id": "p1", "kind": "unknown-kind"})

    pipeline.process_available()
    stats = pipeline.stats.as_dict()
    assert stats["scrape_failures"] == 1
    assert stats["malformed_events"] == 2
    assert collected["articles"] == []


def test_scraped_to_article_uses_fallback_timestamp():
    store = SiteStore()
    store.register(ARTICLE_URL, HTML)  # no published_time meta
    scraped = ArticleScraper(store).scrape(ARTICLE_URL)
    fallback = datetime(2020, 2, 11, 8, 0, 0)
    article = scraped_to_article(scraped, fallback_published=fallback)
    assert article.published_at == fallback
    assert article.article_id == article_id_for(ARTICLE_URL)
