"""Tests for planner table statistics (histograms, NDV, MCVs, staleness)."""

import datetime as dt

import pytest

from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.stats import (
    DEFAULT_RANGE_SELECTIVITY,
    ColumnStats,
    StatsPolicy,
    build_table_stats,
    prefix_upper_bound,
)
from repro.storage.rdbms.table import Table
from repro.storage.rdbms.types import ColumnType


def stats_for(values, column="x", policy=None):
    rows = [{"x": value} for value in values]
    return build_table_stats(rows, ["x"], policy).column(column)


class TestPrefixUpperBound:
    def test_increments_last_code_point(self):
        assert prefix_upper_bound("abc") == "abd"
        assert prefix_upper_bound("a") == "b"

    def test_empty_prefix_is_unbounded(self):
        assert prefix_upper_bound("") is None

    def test_max_code_point_carries_left(self):
        top = chr(0x10FFFF)
        assert prefix_upper_bound("a" + top) == "b"
        assert prefix_upper_bound(top * 3) is None

    def test_bound_covers_every_prefixed_string(self):
        upper = prefix_upper_bound("blog")
        for sample in ("blog", "blog-x", "blogzzz", "blog￿"):
            assert "blog" <= sample < upper


class TestColumnStats:
    def test_null_and_distinct_counting(self):
        cs = stats_for(["a", "a", "b", None, None])
        assert cs.row_count == 5 and cs.null_count == 2
        assert cs.non_null == 3 and cs.distinct_count == 2
        assert cs.null_fraction == pytest.approx(0.4)

    def test_mcv_keeps_only_repeated_values(self):
        cs = stats_for(["hot"] * 10 + ["a", "b", "c"])
        assert cs.most_common == (("hot", 10),)

    def test_eq_estimate_exact_for_mcv_hit(self):
        cs = stats_for([0] * 500 + list(range(1, 501)))
        assert cs.eq_rows(0) == 500.0

    def test_eq_estimate_uses_rest_ndv_for_tail_values(self):
        cs = stats_for([0] * 500 + list(range(1, 501)))
        # 500 remaining rows over 500 remaining distinct values.
        assert cs.eq_rows(250) == pytest.approx(1.0)

    def test_eq_of_null_is_zero(self):
        cs = stats_for(["a", None])
        assert cs.eq_rows(None) == 0.0

    def test_in_estimate_is_capped_at_non_null(self):
        cs = stats_for(["a"] * 4 + ["b"] * 4)
        assert cs.in_rows(["a", "b", "a", "b"]) == cs.non_null

    def test_range_estimate_tracks_skew(self):
        # 900 rows clustered low, 100 spread high: the equi-depth histogram
        # must see that `>= 500` matches only the sparse tail.
        values = list(range(90)) * 10 + list(range(100, 1000, 9))
        cs = stats_for(values)
        est = cs.range_rows(low=500)
        actual = sum(1 for v in values if v >= 500)
        assert actual / 3 <= est <= actual * 3
        assert est < 200  # far below the uniform guess of ~half the table

    def test_range_estimate_handles_uncomparable_bounds(self):
        cs = stats_for(list(range(100)))
        assert cs.range_rows(low="not-a-number") == pytest.approx(
            DEFAULT_RANGE_SELECTIVITY * 100
        )

    def test_range_interpolates_datetimes(self):
        start = dt.datetime(2020, 1, 1)
        values = [start + dt.timedelta(days=i) for i in range(100)]
        cs = stats_for(values)
        est = cs.range_rows(low=start + dt.timedelta(days=90))
        assert 3 <= est <= 30

    def test_prefix_rows_uses_string_range(self):
        cs = stats_for([f"news-{i:03d}" for i in range(95)] + ["blog-1"] * 5)
        est = cs.prefix_rows("blog")
        assert est <= 20  # the prefix matches the small cluster, not ~half
        assert cs.prefix_rows("") == cs.non_null

    def test_empty_column_estimates_zero(self):
        cs = stats_for([None, None])
        assert cs.eq_rows("a") == 0.0
        assert cs.range_rows(low=0) == 0.0


class TestBuildTableStats:
    def test_unhashable_values_degrade_gracefully(self):
        cs = stats_for([{"a": 1}, {"b": 2}, None])
        assert cs.distinct_count == 1  # len(non_null) // 2
        assert cs.histogram == () and cs.most_common == ()

    def test_heterogeneous_values_skip_histogram(self):
        cs = stats_for([1, "one", 2, "two", 1])
        assert cs.histogram == ()
        assert cs.distinct_count == 4
        assert cs.most_common == ((1, 2),)

    def test_histogram_has_bucket_plus_one_boundaries(self):
        policy = StatsPolicy(histogram_buckets=4)
        cs = stats_for(list(range(100)), policy=policy)
        assert len(cs.histogram) == 5
        assert cs.histogram[0] == cs.min_value and cs.histogram[-1] == cs.max_value
        assert list(cs.histogram) == sorted(cs.histogram)

    def test_stats_only_for_requested_columns(self):
        stats = build_table_stats([{"a": 1, "b": 2}], ["a"])
        assert stats.row_count == 1
        assert set(stats.columns) == {"a"}
        assert stats.column("b") is None


class TestStatsPolicy:
    def test_stale_threshold_floor_and_fraction(self):
        policy = StatsPolicy(stale_fraction=0.2, min_stale_writes=64)
        assert policy.stale_threshold(100) == 64  # floor dominates small tables
        assert policy.stale_threshold(10_000) == 2000


def build_events(policy=None, n_rows=200):
    schema = TableSchema(
        name="events",
        primary_key="id",
        columns=(
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("category", ColumnType.TEXT),
        ),
    )
    table = Table(schema, stats_policy=policy)
    for i in range(n_rows):
        table.insert({"id": i, "category": "ab"[i % 2]})
    table.create_index("category", kind="hash")
    return table


class TestTableStatisticsLifecycle:
    def test_analyze_builds_stats_over_indexed_columns(self):
        table = build_events()
        assert table.stats_state() == "missing"
        stats = table.analyze()
        assert table.stats_state() == "fresh"
        assert stats.row_count == 200
        assert set(stats.columns) == {"category", "id"}  # id: implicit PK index
        assert table.planner_metrics.analyze_runs == 1

    def test_writes_past_threshold_mark_stats_stale(self):
        policy = StatsPolicy(stale_fraction=0.2, min_stale_writes=10)
        table = build_events(policy=policy)
        table.analyze()
        for i in range(200, 241):  # 41 writes > max(10, 0.2 * 200)
            table.insert({"id": i, "category": "c"})
        assert table.stats_state() == "stale"

    def test_planning_stats_auto_refreshes_stale_snapshot(self):
        policy = StatsPolicy(stale_fraction=0.2, min_stale_writes=10)
        table = build_events(policy=policy)
        table.analyze()
        for i in range(200, 241):
            table.insert({"id": i, "category": "c"})
        refreshed = table.planning_stats()
        assert refreshed is not None and refreshed.row_count == 241
        assert table.stats_state() == "fresh"

    def test_auto_analyze_off_returns_no_planning_stats(self):
        table = build_events(policy=StatsPolicy(auto_analyze=False))
        assert table.planning_stats() is None
        table.analyze()  # explicit ANALYZE still works
        assert table.planning_stats() is not None

    def test_create_index_and_truncate_invalidate_stats(self):
        table = build_events()
        table.analyze()
        table.create_index("id", kind="sorted")
        assert table.stats_state() == "missing"
        table.analyze()
        table.truncate()
        assert table.stats_state() == "missing"

    def test_restore_invalidates_stats(self):
        table = build_events()
        snapshot = table.snapshot()
        table.analyze()
        table.restore(snapshot)
        assert table.stats_state() == "missing"
