"""Tests for the §4.2 insights engine (newsroom activity, engagement, evidence)."""

from datetime import datetime, timedelta

import pytest

from repro.core.insights import DistributionComparison, InsightsEngine, NewsroomActivity
from repro.errors import ValidationError
from repro.models import Article, RatingClass

START = datetime(2020, 1, 15)
END = datetime(2020, 1, 25)

OUTLET_RATINGS = {
    "low.example.com": RatingClass.LOW,
    "verylow.example.com": RatingClass.VERY_LOW,
    "high.example.com": RatingClass.HIGH,
    "veryhigh.example.com": RatingClass.VERY_HIGH,
    "mixed.example.com": RatingClass.MIXED,
}


def make_article(index, outlet, day, covid):
    return Article(
        article_id=f"a-{outlet}-{index}",
        url=f"https://{outlet}/{index}",
        outlet_domain=outlet,
        title="t",
        published_at=START + timedelta(days=day, hours=10),
        text="body",
        topics=("covid19",) if covid else ("other",),
    )


def synthetic_articles():
    """Low-quality outlets shift towards COVID in the second half of the window."""
    articles = []
    index = 0
    for day in range(10):
        late = day >= 5
        for outlet in ("low.example.com", "verylow.example.com"):
            for i in range(4):
                covid = i < (3 if late else 1)      # 75% late vs 25% early
                articles.append(make_article(index, outlet, day, covid))
                index += 1
        for outlet in ("high.example.com", "veryhigh.example.com"):
            for i in range(4):
                covid = i < 1                       # constant 25%
                articles.append(make_article(index, outlet, day, covid))
                index += 1
    return articles


class TestNewsroomActivity:
    def test_series_cover_every_day_and_class(self):
        engine = InsightsEngine(OUTLET_RATINGS)
        activity = engine.newsroom_activity(synthetic_articles(), "covid19", START, END)
        assert len(activity.days) == 10
        for rating in RatingClass:
            assert len(activity.series_for(rating)) == 10

    def test_low_quality_outlets_diverge_in_the_second_half(self):
        engine = InsightsEngine(OUTLET_RATINGS)
        activity = engine.newsroom_activity(synthetic_articles(), "covid19", START, END, smoothing_days=1)
        assert activity.mean_share(True, first_half=True) == pytest.approx(
            activity.mean_share(False, first_half=True), abs=5.0
        )
        assert activity.divergence() > 30.0

    def test_unknown_rating_class_raises(self):
        engine = InsightsEngine(OUTLET_RATINGS)
        activity = engine.newsroom_activity(synthetic_articles(), "covid19", START, END)
        with pytest.raises(ValidationError):
            activity.series_for("no-such-class")

    def test_smoothing_preserves_series_length(self):
        engine = InsightsEngine(OUTLET_RATINGS)
        smooth = engine.newsroom_activity(synthetic_articles(), "covid19", START, END, smoothing_days=5)
        raw = engine.newsroom_activity(synthetic_articles(), "covid19", START, END, smoothing_days=1)
        assert len(smooth.group_series(True)) == len(raw.group_series(True))

    def test_articles_outside_the_window_are_ignored(self):
        engine = InsightsEngine(OUTLET_RATINGS)
        outside = [make_article(999, "low.example.com", 400, True)]
        activity = engine.newsroom_activity(outside, "covid19", START, END)
        assert all(v == 0.0 for v in activity.group_series(True))


class TestDistributions:
    def test_social_engagement_split(self):
        engine = InsightsEngine(OUTLET_RATINGS)
        reactions = {"a1": 500, "a2": 80, "a3": 12, "a4": 9, "a5": 40}
        outlets = {
            "a1": "low.example.com", "a2": "verylow.example.com",
            "a3": "high.example.com", "a4": "veryhigh.example.com",
            "a5": "mixed.example.com",   # mixed outlets are excluded from the comparison
        }
        comparison = engine.social_engagement(reactions, outlets)
        assert comparison.low_quality_samples == (500.0, 80.0)
        assert comparison.high_quality_samples == (12.0, 9.0)
        assert comparison.low_mean_higher()
        assert comparison.low_spread_wider()

    def test_evidence_seeking_split(self):
        engine = InsightsEngine(OUTLET_RATINGS)
        ratios = {"a1": 0.0, "a2": 0.05, "a3": 0.5, "a4": 0.4}
        outlets = {"a1": "low.example.com", "a2": "verylow.example.com",
                   "a3": "high.example.com", "a4": "veryhigh.example.com"}
        comparison = engine.evidence_seeking(ratios, outlets)
        assert not comparison.low_mean_higher()
        summary = comparison.summary()
        assert summary["high_mean"] > summary["low_mean"] + 0.3

    def test_kde_curves_shapes(self):
        comparison = DistributionComparison(
            quantity="x",
            low_quality_samples=tuple(float(v) for v in range(20)),
            high_quality_samples=(1.0, 2.0, 3.0, 4.0),
        )
        curves = comparison.kde_curves(n_points=64)
        assert len(curves["low-quality"][0]) == 64
        assert len(curves["high-quality"][1]) == 64

    def test_kde_curves_with_too_few_samples_are_empty(self):
        comparison = DistributionComparison("x", (1.0,), ())
        curves = comparison.kde_curves()
        assert curves["low-quality"] == ([], [])
        assert curves["high-quality"] == ([], [])

    def test_unknown_outlets_are_skipped(self):
        engine = InsightsEngine(OUTLET_RATINGS)
        comparison = engine.social_engagement({"a1": 10}, {"a1": "unknown.example.com"})
        assert comparison.low_quality_samples == ()
        assert comparison.high_quality_samples == ()


class TestTopicInsightsBundle:
    def test_bundle_combines_all_three_axes(self):
        engine = InsightsEngine(OUTLET_RATINGS)
        articles = synthetic_articles()
        covid_ids = [a.article_id for a in articles if "covid19" in a.topics]
        reactions = {aid: (300 if "low" in aid else 20) for aid in covid_ids}
        ratios = {aid: (0.02 if "low" in aid else 0.45) for aid in covid_ids}
        insights = engine.topic_insights(articles, "covid19", START, END, reactions, ratios)
        assert insights.topic_key == "covid19"
        assert insights.metadata["n_articles"] == len(articles)
        assert insights.newsroom_activity.divergence() > 0
        assert insights.social_engagement.low_mean_higher()
        assert not insights.evidence_seeking.low_mean_higher()
