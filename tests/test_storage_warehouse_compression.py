"""Tests for block format 4 (compressed wire frames, typed body segments),
per-partition compaction, the storage-stats surface and the DFS IO counters."""

import json
import random
from datetime import datetime, timedelta

import pytest

from repro.compute.executor import LocalExecutor
from repro.core.analytics import WarehouseAnalytics
from repro.errors import WarehouseError
from repro.storage.cdc import CdcPublisher, DeltaApplier
from repro.storage.migration import MigrationJob
from repro.storage.rdbms.database import Database
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.types import ColumnType
from repro.storage.warehouse.blocks import (
    BLOCK_FORMAT_VERSION,
    DEFAULT_COMPRESSION_LEVEL,
    WIRE_MAGIC,
    ColumnarBlock,
    unwrap_payload,
    wire_payload,
    wrap_payload,
)
from repro.storage.warehouse.dfs import DistributedFileSystem
from repro.storage.warehouse.warehouse import Warehouse
from repro.streaming.broker import MessageBroker


# ======================================================================
# Format-4 wire frames
# ======================================================================


class TestFormat4Wire:
    ROWS = [
        {"id": i, "outlet": f"o{i % 4}", "score": float(i) / 3, "n": i * 1000,
         "ts": datetime(2020, 2, 1) + timedelta(hours=i)}
        for i in range(64)
    ]
    COLS = ["id", "outlet", "score", "n", "ts"]

    def test_wire_starts_with_magic_and_declares_format_4(self):
        data = ColumnarBlock.from_rows(self.ROWS, self.COLS).to_bytes()
        assert data[:4] == WIRE_MAGIC
        header = wire_payload(data)
        assert header["format"] == BLOCK_FORMAT_VERSION == 4

    def test_v4_roundtrip_across_compression_levels(self):
        block = ColumnarBlock.from_rows(self.ROWS, self.COLS)
        for level in (0, 1, DEFAULT_COMPRESSION_LEVEL, 9):
            restored = ColumnarBlock.from_bytes(block.to_bytes(compression_level=level))
            assert restored.to_rows() == self.ROWS
            assert restored.stats == block.stats

    def test_level_zero_stores_raw_payload(self):
        block = ColumnarBlock.from_rows(self.ROWS, self.COLS)
        data = block.to_bytes(compression_level=0)
        assert data[4:5] == b"0"
        assert unwrap_payload(data) == block.to_payload()
        compressed = block.to_bytes(compression_level=9)
        assert compressed[4:5] == b"z"
        assert len(compressed) < len(data)

    def test_invalid_compression_levels_rejected(self):
        block = ColumnarBlock.from_rows(self.ROWS[:2], self.COLS)
        for level in (-1, 10, 2.5, True, None):
            with pytest.raises(WarehouseError):
                block.to_bytes(compression_level=level)

    def test_incompressible_payload_falls_back_to_stored(self):
        raw = random.Random(7).randbytes(2048)
        framed = wrap_payload(raw, compression_level=9)
        assert framed[4:5] == b"0"  # zlib could not shrink it: stored codec
        assert len(framed) == len(raw) + 5
        assert unwrap_payload(framed) == raw

    def test_empty_block_roundtrips(self):
        block = ColumnarBlock(columns={"a": [], "b": []}, n_rows=0)
        restored = ColumnarBlock.from_bytes(block.to_bytes())
        assert restored.n_rows == 0
        assert restored.column("a") == [] and restored.column("b") == []

    def test_int_columns_use_typed_segments_with_nulls(self):
        values = list(range(-300, 300)) + [None, None]
        rows = [{"x": v} for v in values]
        block = ColumnarBlock.from_rows(rows, ["x"])
        spec = wire_payload(block.to_bytes())["columns"]["x"]
        assert spec["enc"] == "int" and spec["seg"]["t"] == "h"
        assert ColumnarBlock.from_bytes(block.to_bytes()).column("x") == values

    def test_float_columns_preserve_special_values(self):
        values = [0.1 * i for i in range(200)] + [-0.0, float("inf"), None]
        rows = [{"x": v} for v in values]
        block = ColumnarBlock.from_rows(rows, ["x"])
        assert wire_payload(block.to_bytes())["columns"]["x"]["enc"] == "float"
        decoded = ColumnarBlock.from_bytes(block.to_bytes()).column("x")
        assert [repr(v) for v in decoded] == [repr(v) for v in values]

    def test_huge_ints_fall_back_to_plain_json(self):
        values = [2 ** 70 + i for i in range(100)]
        rows = [{"x": v} for v in values]
        block = ColumnarBlock.from_rows(rows, ["x"])
        assert wire_payload(block.to_bytes())["columns"]["x"]["enc"] == "plain"
        assert ColumnarBlock.from_bytes(block.to_bytes()).column("x") == values

    def test_mixed_int_float_column_keeps_per_value_types(self):
        # An f64 segment would silently rewrite 1 as 1.0.
        values = ([1, 2.5] * 40) + [True]
        rows = [{"x": v} for v in values]
        restored = ColumnarBlock.from_bytes(ColumnarBlock.from_rows(rows, ["x"]).to_bytes())
        for original, decoded in zip(values, restored.column("x")):
            assert decoded == original and type(decoded) is type(original)

    def test_null_dictionary_codes_roundtrip(self):
        values = (["a", "b", None, "c"] * 30)[:100]
        rows = [{"k": v} for v in values]
        block = ColumnarBlock.from_rows(rows, ["k"])
        restored = ColumnarBlock.from_bytes(block.to_bytes())
        assert restored.column("k") == values
        dict_values, codes = restored.dictionary("k")
        assert dict_values == ["a", "b", "c"]
        assert [c is None for c in codes] == [v is None for v in values]

    def test_columns_materialise_lazily_and_independently(self):
        block = ColumnarBlock.from_rows(self.ROWS, self.COLS)
        restored = ColumnarBlock.from_bytes(block.to_bytes())
        assert len(restored.columns._materialised) == 0  # nothing expanded yet
        assert restored.column_array("n")[:3] == [0, 1000, 2000]
        assert set(restored.columns._materialised) == {"n"}
        # The full schema is still visible without materialisation.
        assert set(restored.columns) == set(self.COLS)
        assert len(restored.columns) == len(self.COLS)
        assert "missing" not in restored.columns
        assert restored.to_rows() == self.ROWS  # bulk access expands the rest

    def test_snapshot_copies_see_every_column(self):
        # dict() / {**...} on a half-materialised mapping must expand all
        # columns, never silently return the materialised subset.
        restored = ColumnarBlock.from_bytes(
            ColumnarBlock.from_rows(self.ROWS, self.COLS).to_bytes()
        )
        restored.column_array("n")
        as_dict = dict(restored.columns)
        assert set(as_dict) == set(self.COLS)
        assert {**restored.columns} == as_dict
        assert as_dict["id"] == [r["id"] for r in self.ROWS]
        # Mapping equality with a plain dict works in both directions.
        eager = ColumnarBlock.from_rows(self.ROWS, self.COLS).columns
        assert restored.columns == eager and eager == restored.columns

    def test_corrupt_v4_frames_raise_warehouse_error(self):
        good = ColumnarBlock.from_rows(self.ROWS, self.COLS).to_bytes()
        for bad in (
            WIRE_MAGIC + b"?" + good[5:],          # unknown codec
            WIRE_MAGIC + b"z" + b"not zlib data",  # corrupt compression
            WIRE_MAGIC + b"0" + b"\x00\x00\xff\xff",  # header length out of range
        ):
            with pytest.raises(WarehouseError):
                ColumnarBlock.from_bytes(bad)


class TestLegacyFormatsStillDeserialise:
    def test_format1_seed_payload(self):
        payload = {
            "n_rows": 3,
            "columns": {
                "ts": [{"__ts__": "2020-01-01T00:00:00"}, None, {"__ts__": "2020-01-02T12:30:00"}],
                "n": [1, 2, 3],
            },
            "stats": {"n": {"nulls": 0, "min": 1, "max": 3}},
        }
        block = ColumnarBlock.from_bytes(json.dumps(payload).encode())
        assert block.column("ts") == [datetime(2020, 1, 1), None, datetime(2020, 1, 2, 12, 30)]
        assert block.column("n") == [1, 2, 3]

    def test_format2_dictionary_payload(self):
        payload = {
            "format": 2,
            "n_rows": 4,
            "columns": {"k": {"enc": "dict", "values": ["x", "y"], "codes": [0, 1, None, 0]}},
            "stats": {},
        }
        block = ColumnarBlock.from_bytes(json.dumps(payload).encode())
        assert block.column("k") == ["x", "y", None, "x"]
        assert block.dictionary("k") == (["x", "y"], [0, 1, None, 0])

    def test_format3_rle_and_sort_key_payload(self):
        payload = {
            "format": 3,
            "n_rows": 5,
            "columns": {"k": {"enc": "rle", "runs": [[2, "a"], [3, "b"]]}},
            "stats": {},
            "sort_key": ["k"],
        }
        block = ColumnarBlock.from_bytes(json.dumps(payload).encode())
        assert block.column("k") == ["a", "a", "b", "b", "b"]
        assert block.sort_key == ("k",) and block.is_sorted_by("k")

    def test_legacy_reserialises_as_format_4(self):
        legacy = json.dumps({"n_rows": 1, "columns": {"a": [7]}, "stats": {}}).encode()
        block = ColumnarBlock.from_bytes(legacy)
        data = block.to_bytes()
        assert data[:4] == WIRE_MAGIC
        assert ColumnarBlock.from_bytes(data).column("a") == [7]


# ======================================================================
# Table-level compression knob + storage stats
# ======================================================================


def _filled_table(warehouse: Warehouse, name: str = "t", n: int = 300):
    table = warehouse.create_table(
        name, ["id", "outlet", "created_at", "n"], "created_at"
    )
    table.append(
        {"id": f"{name}-{i}", "outlet": f"o{i % 5}",
         "created_at": datetime(2020, 1, 15) + timedelta(days=i % 3), "n": i}
        for i in range(n)
    )
    return table


class TestStorageStats:
    def test_per_block_counts_match_dfs_file_sizes(self):
        warehouse = Warehouse(block_rows=64)
        table = _filled_table(warehouse)
        stats = table.storage_stats()
        assert stats["block_count"] == table.block_count() > 1
        assert stats["row_count"] == table.row_count()
        for partition in stats["partitions"].values():
            for block in partition["blocks"]:
                assert block["compressed_bytes"] == warehouse.dfs.file_size(block["path"])
                assert block["uncompressed_bytes"] >= block["compressed_bytes"]
        assert stats["compression_ratio"] > 1.0

    def test_level_zero_table_writes_raw_blocks(self):
        warehouse = Warehouse(block_rows=64, compression_level=0)
        table = _filled_table(warehouse)
        stats = table.storage_stats()
        assert stats["compression_level"] == 0
        # Stored codec: the wire is payload + the 5-byte frame envelope.
        for partition in stats["partitions"].values():
            for block in partition["blocks"]:
                assert block["compressed_bytes"] == block["uncompressed_bytes"] + 5

    def test_create_table_overrides_warehouse_level(self):
        warehouse = Warehouse(block_rows=64, compression_level=9)
        table = warehouse.create_table(
            "raw", ["id", "created_at"], "created_at", compression_level=0
        )
        assert table.compression_level == 0
        assert warehouse.create_table("dflt", ["id", "created_at"], "created_at").compression_level == 9
        with pytest.raises(WarehouseError):
            Warehouse(compression_level=11)

    def test_compressed_tables_store_fewer_dfs_bytes(self):
        compressed = Warehouse(block_rows=128, compression_level=6)
        raw = Warehouse(block_rows=128, compression_level=0)
        _filled_table(compressed, n=500)
        _filled_table(raw, n=500)
        assert (
            compressed.dfs.stats()["stored_bytes"] < raw.dfs.stats()["stored_bytes"]
        )

    def test_warehouse_storage_stats_keys_every_table(self):
        warehouse = Warehouse(block_rows=64)
        _filled_table(warehouse, "a")
        _filled_table(warehouse, "b")
        assert set(warehouse.storage_stats()) == {"a", "b"}


# ======================================================================
# Per-partition compaction
# ======================================================================


def _fragmented(sort_key=None, appends=12, rows_per_append=30, block_rows=128):
    rng = random.Random(13)
    warehouse = Warehouse(block_rows=block_rows)
    table = warehouse.create_table(
        "f", ["id", "outlet", "created_at", "n"], "created_at", sort_key=sort_key
    )
    counter = 0
    for _ in range(appends):
        batch = []
        for _ in range(rows_per_append):
            batch.append({
                "id": f"r{counter}", "outlet": f"o{rng.randrange(4)}",
                "created_at": datetime(2020, 1, 15) + timedelta(days=rng.randrange(2)),
                "n": rng.randrange(10_000),
            })
            counter += 1
        table.append(batch)
    return warehouse, table


class TestCompaction:
    def test_compact_partition_merges_blocks_and_reports(self):
        _, table = _fragmented()
        partition = table.partitions()[0]
        rows_before = table.row_count(partition)
        blocks_before = len(table.storage_stats()["partitions"][partition]["blocks"])
        assert blocks_before >= 12
        report = table.compact_partition(partition)
        assert report["blocks_before"] == blocks_before
        assert report["blocks_after"] == -(-rows_before // table.block_rows)
        assert report["rows"] == rows_before == table.row_count(partition)
        assert report["compressed_bytes_after"] < report["compressed_bytes_before"]

    def test_unknown_partition_raises(self):
        _, table = _fragmented(appends=1)
        with pytest.raises(WarehouseError):
            table.compact_partition("1999-01-01")

    def test_row_order_preserved_exactly_on_unsorted_tables(self):
        _, table = _fragmented()
        before = list(table.scan_filtered())
        grouped_before = table.aggregate(
            {"c": ("count", "*"), "s": ("sum", "n")}, group_by="outlet"
        )
        for partition in table.partitions():
            table.compact_partition(partition)
        assert list(table.scan_filtered()) == before
        assert table.aggregate(
            {"c": ("count", "*"), "s": ("sum", "n")}, group_by="outlet"
        ) == grouped_before

    def test_compaction_recluster_sorts_the_whole_partition(self):
        # Rows arrived unsorted across appends: each append is its own sorted
        # run, so the partition as a whole is not sorted until compaction.
        _, table = _fragmented(sort_key=["n"])
        partition = table.partitions()[0]
        interleaved = [r["n"] for r in table.scan(partitions=[partition])]
        assert interleaved != sorted(interleaved)
        table.compact_partition(partition)
        compacted = [r["n"] for r in table.scan(partitions=[partition])]
        assert compacted == sorted(interleaved)
        # Query parity as multisets + aggregates (row order legitimately changed).
        filters = [("n", 1000, 7000)]
        assert sorted(
            r["id"] for r in table.scan_filtered(range_filters=filters)
        ) == sorted(
            r["id"] for r in table.scan(predicate=lambda r: 1000 <= r["n"] <= 7000)
        )

    def test_compaction_invalidates_the_block_cache(self):
        _, table = _fragmented()
        before = table.read_column("n")  # warms the cache
        for partition in table.partitions():
            table.compact_partition(partition)
        assert table.read_column("n") == before  # fresh blocks, same data

    def test_compaction_frees_dfs_space_without_counter_drift(self):
        warehouse, table = _fragmented()
        dfs = warehouse.dfs
        used_before = sum(node.used_bytes for node in dfs.nodes.values())
        files_before = len(dfs.list_files("/warehouse/f/"))
        for partition in table.partitions():
            table.compact_partition(partition)
        used_after = sum(node.used_bytes for node in dfs.nodes.values())
        assert used_after < used_before
        assert len(dfs.list_files("/warehouse/f/")) < files_before
        for node in dfs.nodes.values():
            assert node.used_bytes == sum(len(d) for d in node.blocks.values())
        assert dfs.stats()["stored_bytes"] == float(used_after)

    def test_warehouse_compact_skips_tidy_partitions(self):
        warehouse, table = _fragmented(appends=6)
        reports = warehouse.compact()
        assert set(reports) == {"f"}
        # Everything is already one block per partition: nothing to do.
        assert warehouse.compact() == {}
        with pytest.raises(WarehouseError):
            warehouse.compact(min_blocks=1)

    def test_clustered_early_exit_still_works_after_compaction(self):
        warehouse, table = _fragmented(sort_key=["n"], appends=16, block_rows=60)
        warehouse.compact()
        partition = table.partitions()[0]
        n_blocks = len(table.storage_stats()["partitions"][partition]["blocks"])
        assert n_blocks > 1  # several disjoint sorted blocks after the rewrite
        lowest = min(r["n"] for r in table.scan(partitions=[partition]))
        before = warehouse.dfs.read_count
        table.aggregate(
            {"c": ("count", "*")},
            partitions=[partition],
            range_filters=[("n", None, lowest)],
        )
        # The globally sorted layout lets the walk stop after the first block.
        assert warehouse.dfs.read_count - before == 1


# ======================================================================
# Parallel decode determinism (compressed blocks, zero latency)
# ======================================================================


class TestParallelCompressedDecode:
    def test_results_identical_at_every_worker_count(self):
        rng = random.Random(99)
        warehouse = Warehouse(block_rows=64, cache_blocks=0)
        table = warehouse.create_table(
            "p", ["id", "outlet", "created_at", "w"], "created_at"
        )
        table.append(
            {"id": i, "outlet": f"o{rng.randrange(6)}",
             "created_at": datetime(2020, 1, 15) + timedelta(days=i % 4),
             "w": rng.random()}
            for i in range(600)
        )
        assert warehouse.dfs.read_latency == 0
        executors = [None] + [LocalExecutor(max_workers=n) for n in (1, 2, 4)]
        scans = [
            list(table.scan_columns(["outlet", "w"], executor=ex)) for ex in executors
        ]
        assert all(scan == scans[0] for scan in scans[1:])
        aggregates = [
            table.aggregate(
                {"n": ("count", "*"), "s": ("sum", "w")},
                group_by="outlet", executor=ex,
            )
            for ex in executors
        ]
        # Bit-identical floats: partials merge in deterministic block order.
        assert all(repr(agg) == repr(aggregates[0]) for agg in aggregates[1:])

    def test_zero_latency_uncompressed_scans_stay_sequential(self):
        # Without compression there is no GIL-releasing decode to overlap, so
        # the fan-out is skipped (results must of course still be identical).
        warehouse = Warehouse(block_rows=32, compression_level=0)
        table = _filled_table(warehouse, n=200)
        executor = LocalExecutor(max_workers=4)
        serial = list(table.scan_columns(["n"]))
        parallel = list(table.scan_columns(["n"], executor=executor))
        assert serial == parallel
        assert executor.metrics.tasks_run == 0  # never dispatched


# ======================================================================
# DFS IO counters
# ======================================================================


class TestDfsByteCounters:
    def test_bytes_read_tracks_file_sizes(self):
        dfs = DistributedFileSystem(block_size=8)
        dfs.write_file("/a", b"0123456789" * 3)
        dfs.write_file("/b", b"xy")
        assert dfs.bytes_read == 0
        dfs.read_file("/a")
        assert dfs.bytes_read == 30 and dfs.read_count == 1
        dfs.read_file("/b")
        dfs.read_file("/a")
        assert dfs.bytes_read == 62 and dfs.read_count == 3

    def test_warehouse_reads_report_wire_bytes(self):
        warehouse = Warehouse(block_rows=64)
        table = _filled_table(warehouse)
        warehouse.dfs.bytes_read = 0
        table.read_column("n")
        assert warehouse.dfs.bytes_read == table.storage_stats()["compressed_bytes"]


# ======================================================================
# Scheduled compaction job (migration) + analytics roll-up parity
# ======================================================================


def _migrated_platform(n_days=5, per_day=40):
    db = Database()
    schema = TableSchema(
        name="articles",
        primary_key="url",
        columns=(
            Column("url", ColumnType.TEXT, nullable=False),
            Column("outlet_domain", ColumnType.TEXT),
            Column("published_at", ColumnType.TIMESTAMP, nullable=False),
            Column("ingested_at", ColumnType.TIMESTAMP, nullable=False),
            Column("topics", ColumnType.JSON),
        ),
    )
    db.create_table(schema)
    warehouse = Warehouse(block_rows=4096)
    job = MigrationJob(db, warehouse, compaction_min_blocks=4)
    # Freshness on ingestion time, partitions on event time — the platform's
    # layout.  The first run bootstrap-copies the initial batch; every later
    # CDC pass lands a few late rows in *every* publication-day partition,
    # fragmenting each with one delta block per pass.
    job.add_table(
        "articles", timestamp_column="ingested_at",
        partition_column="published_at", sort_key=["published_at"],
    )
    broker = MessageBroker(default_partitions=2)
    publisher = CdcPublisher(db, broker)
    applier = None
    base = datetime(2020, 1, 15, 6)
    counter = 0
    for run in range(8):
        for day in range(n_days):
            for i in range(per_day // 8):
                db.insert("articles", {
                    "url": f"https://o{counter % 6}.example.com/a{counter}",
                    "outlet_domain": f"o{counter % 6}.example.com",
                    "published_at": base + timedelta(days=day, minutes=counter % 600),
                    "ingested_at": base + timedelta(days=n_days, minutes=counter),
                    "topics": ["covid19"] if counter % 3 == 0 else ["politics"],
                })
                counter += 1
        if applier is None:
            report = job.run(now=base + timedelta(days=n_days, hours=run))
            for mapping in job.mappings():
                publisher.add_mapping(mapping)
            applier = DeltaApplier(warehouse, broker, job.mappings())
            publisher.skip_to(report.cursor_lsn)
        else:
            publisher.publish()
            applier.apply()
    return db, warehouse, job


class TestScheduledCompaction:
    def test_run_compaction_defragments_registered_tables(self):
        _db, warehouse, job = _migrated_platform()
        table = warehouse.table("articles")
        blocks_before = table.block_count()
        assert blocks_before >= 4 * len(table.partitions())
        report = job.run_compaction()
        assert report.compacted and report.blocks_before == blocks_before
        assert report.blocks_after == table.block_count() < blocks_before
        assert report.reclaimed_bytes > 0
        assert job.compaction_history == [report]
        # A second pass finds nothing fragmented.
        assert job.run_compaction().compacted == {}

    def test_run_with_compact_flag_piggybacks_on_migration(self):
        _db, warehouse, job = _migrated_platform()
        blocks_before = warehouse.table("articles").block_count()
        job.run(compact=True)
        assert warehouse.table("articles").block_count() < blocks_before
        assert len(job.compaction_history) == 1

    def test_analytics_rollups_identical_before_and_after_compaction(self):
        _db, warehouse, job = _migrated_platform()
        analytics = WarehouseAnalytics(warehouse)
        daily_before = analytics.daily_article_counts("covid19")
        per_outlet_before = analytics.articles_per_outlet()
        profiles_before = analytics.outlet_activity_profiles("covid19")
        overview = analytics.storage_overview()
        assert overview["tables"]["articles"]["fragmented_partitions"] > 0
        job.run_compaction()
        after = analytics.storage_overview()
        assert after["tables"]["articles"]["fragmented_partitions"] == 0
        assert after["tables"]["articles"]["blocks"] < overview["tables"]["articles"]["blocks"]
        assert analytics.daily_article_counts("covid19") == daily_before
        assert analytics.articles_per_outlet() == per_outlet_before
        assert analytics.outlet_activity_profiles("covid19") == profiles_before
