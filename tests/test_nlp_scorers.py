"""Tests for the subjectivity, click-bait and stance scorers."""

import pytest

from repro.nlp.clickbait import ClickbaitScorer, clickbait_score, extract_clickbait_features
from repro.nlp.stance import Stance, StanceClassifier, classify_stance
from repro.nlp.subjectivity import SubjectivityScorer, subjectivity_score


class TestSubjectivity:
    def test_empty_text_scores_zero(self):
        assert subjectivity_score("") == 0.0

    def test_opinionated_text_scores_higher_than_factual_text(self):
        opinion = (
            "This is an absolutely terrible, outrageous disaster and I think everyone "
            "should be terrified of this shocking nonsense."
        )
        factual = (
            "The study measured infection rates in a cohort of 2400 participants and "
            "reported a statistically significant association according to the data."
        )
        assert subjectivity_score(opinion) > subjectivity_score(factual)

    def test_score_is_bounded(self):
        text = "awful terrible horrible " * 50
        assert 0.0 <= subjectivity_score(text) <= 1.0

    def test_analysis_breakdown_counts(self):
        result = SubjectivityScorer().analyse("This awful study is probably wrong")
        assert result.strong_hits == 1
        assert result.weak_hits >= 1
        assert result.total_words == 6


class TestClickbait:
    def test_clickbait_title_scores_higher_than_factual_title(self):
        clickbait = "You won't believe what doctors hate about this one weird trick!"
        factual = "New study examines vaccine efficacy in large cohort"
        assert clickbait_score(clickbait) > clickbait_score(factual)

    def test_empty_title_scores_zero(self):
        assert ClickbaitScorer().score("") == 0.0

    def test_scores_are_probabilities(self):
        for title in ("SHOCKING news!!!", "Measured analysis of policy", "10 things you need to see"):
            assert 0.0 <= clickbait_score(title) <= 1.0

    def test_feature_extraction(self):
        features = extract_clickbait_features("10 SHOCKING facts you won't believe?")
        assert features.starts_with_number
        assert features.phrase_hits >= 1
        assert features.word_hits >= 1
        assert features.question_marks == 1

    def test_attached_model_is_averaged_in(self):
        class StubModel:
            def predict_proba(self, texts):
                return [1.0 for _ in texts]

        scorer = ClickbaitScorer(model=StubModel())
        plain = "Routine city council meeting scheduled"
        assert scorer.score(plain) > scorer.lexical_score(plain)


class TestStance:
    def test_supportive_post(self):
        assert classify_stance("Great article, accurate and informative. Sharing.") is Stance.SUPPORT

    def test_denying_post(self):
        assert classify_stance("This is fake news, completely debunked nonsense.") is Stance.DENY

    def test_questioning_post(self):
        assert classify_stance("Is this really true? Where are the sources?") is Stance.QUESTION

    def test_neutral_post_defaults_to_comment(self):
        assert classify_stance("Reading the morning news today.") is Stance.COMMENT

    def test_negated_support_counts_as_denial(self):
        result = StanceClassifier().analyse("This is not true and not accurate")
        assert result.stance is Stance.DENY
        assert result.negated_support >= 1

    def test_positive_negative_axis(self):
        assert Stance.SUPPORT.is_positive and Stance.COMMENT.is_positive
        assert Stance.QUESTION.is_negative and Stance.DENY.is_negative

    def test_empty_text_is_comment_with_low_confidence(self):
        result = StanceClassifier().analyse("")
        assert result.stance is Stance.COMMENT
        assert result.confidence == 0.0

    def test_external_model_takes_over_when_provided(self):
        class StubModel:
            def predict(self, texts):
                return ["deny" for _ in texts]

        classifier = StanceClassifier(model=StubModel())
        assert classifier.classify("anything at all") is Stance.DENY
