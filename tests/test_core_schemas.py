"""Tests for the operational-store schemas and the logging helpers."""

import logging
from datetime import datetime

import pytest

from repro.core.schemas import (
    all_schemas,
    articles_schema,
    indicators_schema,
    outlets_schema,
    posts_schema,
    reactions_schema,
    reviews_schema,
)
from repro.errors import SchemaError
from repro.logging_utils import configure_logging, get_logger
from repro.storage.rdbms.database import Database


class TestSchemas:
    def test_every_schema_has_a_primary_key(self):
        for schema in all_schemas():
            assert schema.primary_key is not None
            assert schema.has_column(schema.primary_key)

    def test_all_schemas_create_in_one_database(self):
        db = Database()
        for schema in all_schemas():
            db.create_table(schema)
        assert set(db.table_names()) == {
            "articles", "posts", "reactions", "reviews", "outlets", "indicators"
        }

    def test_articles_schema_round_trip(self):
        db = Database()
        db.create_table(articles_schema())
        db.insert("articles", {
            "article_id": "a1",
            "url": "https://x.example.com/a",
            "outlet_domain": "x.example.com",
            "title": "T",
            "published_at": datetime(2020, 2, 1),
            "created_at": datetime(2020, 2, 1, 1),
            "ingested_at": datetime(2020, 2, 1, 2),
            "topics": ["covid19"],
        })
        row = db.get("articles", "a1")
        assert row["topics"] == ["covid19"]
        assert row["text"] == ""      # default applied

    def test_articles_url_is_unique(self):
        db = Database()
        db.create_table(articles_schema())
        base = {
            "url": "https://x.example.com/a",
            "outlet_domain": "x.example.com",
            "title": "T",
            "published_at": datetime(2020, 2, 1),
            "created_at": datetime(2020, 2, 1),
            "ingested_at": datetime(2020, 2, 1),
        }
        db.insert("articles", {"article_id": "a1", **base})
        with pytest.raises(Exception):
            db.insert("articles", {"article_id": "a2", **base})

    def test_required_timestamps_are_enforced(self):
        db = Database()
        db.create_table(posts_schema())
        with pytest.raises(SchemaError):
            db.insert("posts", {"post_id": "p1", "account": "@a",
                                "article_url": "https://x.example.com/a"})

    def test_individual_schema_names(self):
        assert posts_schema().name == "posts"
        assert reactions_schema().name == "reactions"
        assert reviews_schema().name == "reviews"
        assert outlets_schema().name == "outlets"
        assert indicators_schema().name == "indicators"


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger("custom").name == "repro.custom"

    def test_configure_logging_is_idempotent(self):
        configure_logging(logging.DEBUG)
        configure_logging(logging.DEBUG)
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
        assert root.level == logging.DEBUG
