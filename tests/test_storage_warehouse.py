"""Tests for the simulated DFS, columnar blocks, warehouse tables and migration."""

from datetime import datetime, timedelta

import pytest

from repro.errors import WarehouseError
from repro.storage.cdc import CdcPublisher, DeltaApplier
from repro.storage.migration import MigrationJob, prune_migrated_rows
from repro.storage.rdbms.database import Database
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.types import ColumnType
from repro.storage.warehouse.blocks import ColumnarBlock
from repro.storage.warehouse.dfs import DistributedFileSystem
from repro.storage.warehouse.warehouse import Warehouse
from repro.streaming.broker import MessageBroker


class TestDistributedFileSystem:
    def test_write_read_roundtrip_with_multiple_blocks(self):
        dfs = DistributedFileSystem(n_nodes=3, replication=2, block_size=8)
        payload = b"0123456789" * 5
        n_blocks = dfs.write_file("/data/file.bin", payload)
        assert n_blocks == 7
        assert dfs.read_file("/data/file.bin") == payload
        assert dfs.file_size("/data/file.bin") == len(payload)

    def test_replication_survives_single_node_failure(self):
        dfs = DistributedFileSystem(n_nodes=3, replication=2, block_size=16)
        dfs.write_file("/f", b"important data that matters")
        dfs.kill_node("node-0")
        assert dfs.read_file("/f") == b"important data that matters"

    def test_rebalance_restores_replication(self):
        dfs = DistributedFileSystem(n_nodes=4, replication=2, block_size=16)
        dfs.write_file("/f", b"x" * 64)
        dfs.kill_node("node-0")
        assert dfs.under_replicated_blocks() or True  # may be empty if node-0 held nothing
        copies = dfs.rebalance()
        assert copies >= 0
        assert dfs.under_replicated_blocks() == []

    def test_missing_file_and_unknown_node(self):
        dfs = DistributedFileSystem()
        with pytest.raises(WarehouseError):
            dfs.read_file("/missing")
        with pytest.raises(WarehouseError):
            dfs.kill_node("node-99")

    def test_delete_and_overwrite(self):
        dfs = DistributedFileSystem()
        dfs.write_file("/f", b"one")
        dfs.write_file("/f", b"two")
        assert dfs.read_file("/f") == b"two"
        dfs.delete_file("/f")
        assert not dfs.exists("/f")
        dfs.write_file("/g", b"x")
        with pytest.raises(WarehouseError):
            dfs.write_file("/g", b"y", overwrite=False)

    def test_stats(self):
        dfs = DistributedFileSystem(n_nodes=2)
        dfs.write_file("/a", b"abc")
        stats = dfs.stats()
        assert stats["files"] == 1
        assert stats["live_nodes"] == 2


class TestColumnarBlock:
    def test_roundtrip_with_timestamps(self):
        rows = [
            {"id": "a", "n": 1, "ts": datetime(2020, 2, 1, 8)},
            {"id": "b", "n": 5, "ts": datetime(2020, 2, 2, 9)},
        ]
        block = ColumnarBlock.from_rows(rows, ["id", "n", "ts"])
        restored = ColumnarBlock.from_bytes(block.to_bytes())
        assert restored.to_rows() == rows
        assert restored.stats["n"]["min"] == 1 and restored.stats["n"]["max"] == 5

    def test_projection_and_missing_column(self):
        block = ColumnarBlock.from_rows([{"a": 1, "b": 2}], ["a", "b"])
        assert block.to_rows(["a"]) == [{"a": 1}]
        with pytest.raises(WarehouseError):
            block.to_rows(["missing"])

    def test_zone_map_pruning(self):
        block = ColumnarBlock.from_rows([{"n": 10}, {"n": 20}], ["n"])
        assert block.might_contain("n", low=15)
        assert not block.might_contain("n", low=25)
        assert not block.might_contain("n", high=5)
        assert block.might_contain("unknown_column", low=0)

    def test_empty_rows_rejected(self):
        with pytest.raises(WarehouseError):
            ColumnarBlock.from_rows([], ["a"])


class TestWarehouseTable:
    def _rows(self, n=10):
        return [
            {"article_id": f"a{i}", "outlet": "low" if i % 2 else "high",
             "created_at": datetime(2020, 1, 15) + timedelta(days=i % 3), "reactions": i}
            for i in range(n)
        ]

    def test_partitioning_by_day(self):
        warehouse = Warehouse(block_rows=4)
        table = warehouse.create_table("articles", ["article_id", "outlet", "created_at", "reactions"], "created_at")
        table.append(self._rows(10))
        assert table.row_count() == 10
        assert set(table.partitions()) == {"2020-01-15", "2020-01-16", "2020-01-17"}
        assert table.block_count() >= 3

    def test_scan_with_partition_pruning_and_predicate(self):
        warehouse = Warehouse()
        table = warehouse.create_table("t", ["article_id", "created_at", "reactions"], "created_at")
        table.append(self._rows(9))
        rows = list(table.scan(partitions=["2020-01-15"], predicate=lambda r: r["reactions"] > 0))
        assert all(r["created_at"].day == 15 for r in rows)

    def test_scan_with_zone_filter_skips_blocks(self):
        warehouse = Warehouse(block_rows=2)
        table = warehouse.create_table("t", ["article_id", "created_at", "reactions"], "created_at")
        table.append(self._rows(8))
        high = list(table.scan(zone_filter=("reactions", 6, None), predicate=lambda r: r["reactions"] >= 6))
        assert {r["reactions"] for r in high} == {6, 7}

    def test_read_column_and_drop_partition(self):
        warehouse = Warehouse()
        table = warehouse.create_table("t", ["article_id", "created_at", "reactions"], "created_at")
        table.append(self._rows(6))
        assert len(table.read_column("reactions")) == 6
        removed = table.drop_partition("2020-01-15")
        assert removed > 0
        assert table.row_count() == 6 - removed

    def test_value_partitioning_and_table_management(self):
        warehouse = Warehouse()
        warehouse.create_table("by_outlet", ["article_id", "outlet"], "outlet", partition_by="value")
        warehouse.table("by_outlet").append([{"article_id": "a", "outlet": "low"}])
        assert warehouse.table("by_outlet").partitions() == ["low"]
        assert warehouse.table_names() == ["by_outlet"]
        warehouse.drop_table("by_outlet")
        assert not warehouse.has_table("by_outlet")
        with pytest.raises(WarehouseError):
            warehouse.table("by_outlet")


class TestMigration:
    def _db(self):
        db = Database()
        schema = TableSchema(
            name="articles",
            primary_key="article_id",
            columns=(
                Column("article_id", ColumnType.TEXT, nullable=False),
                Column("outlet", ColumnType.TEXT),
                Column("created_at", ColumnType.TIMESTAMP, nullable=False),
            ),
        )
        db.create_table(schema)
        base = datetime(2020, 1, 15, 10)
        for i in range(6):
            db.insert("articles", {"article_id": f"a{i}", "outlet": "x.example.com",
                                   "created_at": base + timedelta(days=i)})
        return db

    def test_bootstrap_then_cdc_never_duplicates(self):
        db = self._db()
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")

        first = job.run()
        assert first.migrated_rows["articles"] == 6
        second = job.run()
        assert second.migrated_rows["articles"] == 0
        assert warehouse.table("articles").row_count() == 6

        # Increments flow through the CDC pipeline, not a second copy.
        publisher = CdcPublisher(db, MessageBroker(default_partitions=2))
        for mapping in job.mappings():
            publisher.add_mapping(mapping)
        applier = DeltaApplier(warehouse, publisher.broker, job.mappings())
        publisher.skip_to(first.cursor_lsn)
        db.insert("articles", {"article_id": "a9", "outlet": "x.example.com",
                               "created_at": datetime(2020, 1, 25)})
        publisher.publish()
        report = applier.apply()
        assert report.rows == 1
        assert warehouse.table("articles").row_count() == 7
        job.note_synced("articles", report.synced["articles"])
        assert job.synced_through("articles") == datetime(2020, 1, 25)

    def test_missing_timestamp_column_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (id TEXT PRIMARY KEY)")
        job = MigrationJob(db, Warehouse())
        with pytest.raises(Exception):
            job.add_table("t")

    def test_prune_migrated_rows(self):
        db = self._db()
        warehouse = Warehouse()
        job = MigrationJob(db, warehouse)
        job.add_table("articles")
        job.run()
        deleted = prune_migrated_rows(db, job, "articles", keep_days=1, now=datetime(2020, 2, 15))
        assert deleted == 6
        assert db.table("articles").row_count() == 0
        # Nothing migrated yet for an unknown table: prune is a no-op.
        assert prune_migrated_rows(db, MigrationJob(db, warehouse), "articles") == 0
