"""Property-based differential tests for the cost-based query planner.

Three tables hold identical rows and differ only in how the planner may
touch them:

* **plain** — no secondary indexes: every query is a forced full scan, the
  executor evaluates the predicate row by row.  This is the oracle.
* **cost** — indexed, with fresh statistics (``auto_analyze`` on): the
  planner estimates selectivities and picks the cheapest access path.
* **heuristic** — indexed, statistics disabled (``auto_analyze`` off): the
  planner degrades to the historical intersect-every-index plan.

Whatever access path the cost model picks — an index probe, a union, a
LIKE-prefix range, or rejecting every index — the rows returned must be
*identical* to the forced full scan, because candidates are only ever a
superset and the executor re-evaluates the predicate.  The properties
generate arbitrary tables and predicate trees and assert exactly that, for
results, counts, and order-by/limit pipelines.

Run with ``--hypothesis-profile=fts-ci`` for the derandomized CI stream.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.planner import STATS_COST, STATS_HEURISTIC
from repro.storage.rdbms.query import Query
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.stats import StatsPolicy
from repro.storage.rdbms.table import Table
from repro.storage.rdbms.types import ColumnType

relaxed = settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)

CATEGORIES = ["a", "b", "c", "d"]
DOMAIN_STEMS = ["news", "blog", "science", "sci"]

SCHEMA = TableSchema(
    name="events",
    primary_key="id",
    columns=(
        Column("id", ColumnType.INTEGER, nullable=False),
        Column("category", ColumnType.TEXT),
        Column("domain", ColumnType.TEXT),
        Column("score", ColumnType.FLOAT),
        Column("reactions", ColumnType.INTEGER, default=0),
    ),
)


def build_tables(rows):
    """(plain, cost, heuristic) tables holding identical ``rows``."""
    plain = Table(SCHEMA)
    cost = Table(SCHEMA, stats_policy=StatsPolicy(auto_analyze=True, min_stale_writes=8))
    heuristic = Table(SCHEMA, stats_policy=StatsPolicy(auto_analyze=False))
    for table in (plain, cost, heuristic):
        for row in rows:
            table.insert(dict(row))
    for table in (cost, heuristic):
        table.create_index("category", kind="hash")
        table.create_index("reactions", kind="sorted")
        table.create_index("domain", kind="sorted")
        table.create_index("score", kind="sorted")
    return plain, cost, heuristic


# --------------------------------------------------------------- strategies

row_strategy = st.builds(
    lambda category, stem, suffix, score, reactions: {
        "category": category,
        "domain": f"{stem}-{suffix:02d}.example",
        "score": score,
        "reactions": reactions,
    },
    category=st.sampled_from(CATEGORIES),
    stem=st.sampled_from(DOMAIN_STEMS),
    suffix=st.integers(min_value=0, max_value=30),
    score=st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0, width=32)),
    reactions=st.integers(min_value=0, max_value=999),
)


def rows_strategy(max_rows=40):
    def number(rows):
        return [dict(row, id=i) for i, row in enumerate(rows)]

    return st.lists(row_strategy, min_size=0, max_size=max_rows).map(number)


@st.composite
def atom_strategy(draw):
    kind = draw(
        st.sampled_from(["cat-eq", "cat-in", "prefix", "react-cmp", "react-between", "score"])
    )
    if kind == "cat-eq":
        return col("category") == draw(st.sampled_from(CATEGORIES))
    if kind == "cat-in":
        members = draw(st.lists(st.sampled_from(CATEGORIES + [None]), max_size=3))
        return col("category").is_in(members)
    if kind == "prefix":
        stem = draw(st.sampled_from(["n", "b", "sci", "blog-0", "zzz", ""]))
        return col("domain").like(f"{stem}%")
    if kind == "react-cmp":
        bound = draw(st.integers(min_value=0, max_value=999))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=="]))
        column = col("reactions")
        return {
            "<": column < bound, "<=": column <= bound,
            ">": column > bound, ">=": column >= bound,
            "==": column == bound,
        }[op]
    if kind == "react-between":
        low = draw(st.integers(min_value=0, max_value=900))
        return (col("reactions") >= low) & (col("reactions") < low + draw(st.integers(1, 300)))
    return col("score") > draw(st.floats(min_value=0.0, max_value=1.0))


@st.composite
def predicate_strategy(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(atom_strategy())
    left = draw(predicate_strategy(depth=depth - 1))
    right = draw(predicate_strategy(depth=depth - 1))
    return (left & right) if draw(st.booleans()) else (left | right)


# --------------------------------------------------------------- properties


class TestCostPlanEquivalence:
    @relaxed
    @given(rows=rows_strategy(), predicate=predicate_strategy())
    def test_any_plan_matches_forced_full_scan(self, rows, predicate):
        plain, cost, heuristic = build_tables(rows)
        oracle = sorted(r["id"] for r in plain.select(predicate))
        assert sorted(r["id"] for r in cost.select(predicate)) == oracle
        assert sorted(r["id"] for r in heuristic.select(predicate)) == oracle
        assert Query(cost).where(predicate).count() == len(oracle)

    @relaxed
    @given(rows=rows_strategy(), predicate=predicate_strategy())
    def test_ordered_limited_pipeline_matches(self, rows, predicate):
        plain, cost, _ = build_tables(rows)
        slow = Query(plain).where(predicate).order_by("reactions").limit(7).execute().rows
        fast = Query(cost).where(predicate).order_by("reactions").limit(7).execute().rows
        assert fast == slow

    @relaxed
    @given(rows=rows_strategy(max_rows=25), predicate=predicate_strategy(depth=1))
    def test_with_and_without_statistics_agree(self, rows, predicate):
        _, cost, heuristic = build_tables(rows)
        with_stats = sorted(r["id"] for r in cost.select(predicate))
        without = sorted(r["id"] for r in heuristic.select(predicate))
        assert with_stats == without
        if rows:
            # Auto-analyze means the indexed-with-stats table never degrades.
            assert cost.plan_access(predicate).stats_mode != STATS_HEURISTIC


class TestStaleStatisticsDegradation:
    """Stale or absent statistics must never change results, only plans."""

    def make_rows(self, n):
        return [
            {
                "id": i,
                "category": CATEGORIES[i % 4],
                "domain": f"{DOMAIN_STEMS[i % 3]}-{i % 20:02d}.example",
                "score": None if i % 2 else i / n,
                "reactions": (i * 37) % 1000,
            }
            for i in range(n)
        ]

    def test_stale_stats_fall_back_to_heuristic_plan(self):
        rows = self.make_rows(120)
        plain, _, stale = build_tables(rows)
        stale.analyze()
        for i in range(120, 200):  # 80 writes > max(64, 0.2 * 120): stale
            stale.insert(
                {"id": i, "category": "a", "domain": "zzz.example", "score": None, "reactions": 1}
            )
            plain.insert(
                {"id": i, "category": "a", "domain": "zzz.example", "score": None, "reactions": 1}
            )
        assert stale.stats_state() == "stale"
        predicate = (col("category") == "a") & (col("reactions") < 500)
        plan = stale.plan_access(predicate)
        assert plan.stats_mode == STATS_HEURISTIC  # auto_analyze off: no refresh
        assert sorted(r["id"] for r in stale.select(predicate)) == sorted(
            r["id"] for r in plain.select(predicate)
        )

    def test_auto_analyze_refreshes_instead_of_degrading(self):
        rows = self.make_rows(120)
        _, fresh, _ = build_tables(rows)
        fresh.analyze()
        for i in range(120, 200):
            fresh.insert(
                {"id": i, "category": "a", "domain": "zzz.example", "score": None, "reactions": 1}
            )
        plan = fresh.plan_access(col("category") == "a")
        assert plan.stats_mode == STATS_COST
        assert fresh.stats_state() == "fresh"

    def test_empty_table_stats_are_harmless(self):
        plain, cost, heuristic = build_tables([])
        predicate = (col("category") == "a") | (col("reactions") > 10)
        for table in (cost, heuristic):
            assert table.select(predicate) == plain.select(predicate) == []
