"""Tests for the RDBMS column types, schemas, expressions and indexes."""

from datetime import datetime

import pytest

from repro.errors import ColumnNotFound, SchemaError
from repro.storage.rdbms.expressions import col, equality_lookup, lit
from repro.storage.rdbms.index import HashIndex, SortedIndex, build_index
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.types import ColumnType


class TestColumnTypes:
    def test_integer_coercion(self):
        assert ColumnType.INTEGER.coerce("42") == 42
        assert ColumnType.INTEGER.coerce(3.0) == 3
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.coerce("not-a-number")
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.coerce(True)

    def test_float_and_text_coercion(self):
        assert ColumnType.FLOAT.coerce("2.5") == 2.5
        assert ColumnType.TEXT.coerce(12) == "12"

    def test_boolean_coercion(self):
        assert ColumnType.BOOLEAN.coerce("true") is True
        assert ColumnType.BOOLEAN.coerce(0) is False
        with pytest.raises(SchemaError):
            ColumnType.BOOLEAN.coerce("maybe")

    def test_timestamp_roundtrip_through_storage(self):
        ts = datetime(2020, 2, 1, 8, 30)
        stored = ColumnType.TIMESTAMP.to_storage(ts)
        assert ColumnType.TIMESTAMP.from_storage(stored) == ts

    def test_json_roundtrip(self):
        value = {"a": [1, 2], "b": "x"}
        stored = ColumnType.JSON.to_storage(value)
        assert ColumnType.JSON.from_storage(stored) == value

    def test_none_passes_through(self):
        assert ColumnType.INTEGER.coerce(None) is None
        assert ColumnType.TIMESTAMP.to_storage(None) is None


class TestSchema:
    def _schema(self):
        return TableSchema(
            name="articles",
            primary_key="id",
            columns=(
                Column("id", ColumnType.TEXT, nullable=False),
                Column("title", ColumnType.TEXT, default=""),
                Column("score", ColumnType.FLOAT),
                Column("views", ColumnType.INTEGER, nullable=False, default=0),
            ),
        )

    def test_normalize_row_applies_defaults_and_coercion(self):
        row = self._schema().normalize_row({"id": "a1", "score": "0.5"})
        assert row == {"id": "a1", "title": "", "score": 0.5, "views": 0}

    def test_unknown_column_rejected(self):
        with pytest.raises(ColumnNotFound):
            self._schema().normalize_row({"id": "a1", "missing": 1})

    def test_not_null_enforced(self):
        schema = self._schema()
        with pytest.raises(SchemaError):
            schema.normalize_row({"title": "no id"})

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                name="t",
                columns=(Column("a", ColumnType.TEXT), Column("a", ColumnType.TEXT)),
            )

    def test_primary_key_must_be_a_column(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", primary_key="missing", columns=(Column("a", ColumnType.TEXT),))

    def test_normalize_update_only_touches_given_columns(self):
        changes = self._schema().normalize_update({"views": "7"})
        assert changes == {"views": 7}
        with pytest.raises(ColumnNotFound):
            self._schema().normalize_update({"missing": 1})

    def test_unique_columns_include_primary_key(self):
        schema = TableSchema(
            name="t",
            primary_key="id",
            columns=(Column("id", ColumnType.TEXT, nullable=False), Column("u", ColumnType.TEXT, unique=True)),
        )
        assert schema.unique_columns() == ["id", "u"]


class TestExpressions:
    ROW = {"rating": "high", "reactions": 25, "score": None, "title": "Covid outbreak"}

    def test_comparisons(self):
        assert (col("reactions") > 10).evaluate(self.ROW)
        assert not (col("reactions") >= 100).evaluate(self.ROW)
        assert (col("rating") == "high").evaluate(self.ROW)

    def test_null_semantics(self):
        assert not (col("score") > 0).evaluate(self.ROW)
        assert col("score").is_null().evaluate(self.ROW)
        assert col("reactions").is_not_null().evaluate(self.ROW)

    def test_boolean_combinators(self):
        expr = (col("rating") == "high") & (col("reactions") > 10)
        assert expr.evaluate(self.ROW)
        assert not (~expr).evaluate(self.ROW)
        assert ((col("rating") == "low") | (col("reactions") > 10)).evaluate(self.ROW)

    def test_in_and_like(self):
        assert col("rating").is_in(["high", "very-high"]).evaluate(self.ROW)
        assert col("title").like("%outbreak").evaluate(self.ROW)
        assert not col("title").like("flu%").evaluate(self.ROW)

    def test_arithmetic(self):
        assert (col("reactions") + 5).evaluate(self.ROW) == 30
        assert (col("reactions") * lit(2)).evaluate(self.ROW) == 50
        assert (col("score") + 1).evaluate(self.ROW) is None

    def test_missing_column_raises(self):
        with pytest.raises(ColumnNotFound):
            col("absent").evaluate(self.ROW)

    def test_columns_introspection_and_equality_lookup(self):
        expr = (col("a") == 1) & (col("b") > 2)
        assert expr.columns() == {"a", "b"}
        assert equality_lookup(expr) == {"a": 1}
        assert equality_lookup(None) == {}


class TestIndexes:
    def test_hash_index(self):
        index = HashIndex("rating")
        index.add(1, "high")
        index.add(2, "high")
        index.add(3, "low")
        assert index.lookup("high") == {1, 2}
        index.remove(1, "high")
        assert index.lookup("high") == {2}
        assert len(index) == 2

    def test_sorted_index_range(self):
        index = SortedIndex("score")
        for row_id, value in enumerate([5, 1, 9, 3, 7]):
            index.add(row_id, value)
        assert set(index.range(low=3, high=7)) == {0, 3, 4}
        assert set(index.range(low=3, high=7, include_low=False)) == {0, 4}
        assert index.min_value() == 1 and index.max_value() == 9
        assert index.lookup(9) == {2}

    def test_sorted_index_remove(self):
        index = SortedIndex("score")
        index.add(1, 5)
        index.add(2, 5)
        index.remove(1, 5)
        assert index.lookup(5) == {2}

    def test_build_index_factory(self):
        assert isinstance(build_index("hash", "c"), HashIndex)
        assert isinstance(build_index("sorted", "c"), SortedIndex)
        with pytest.raises(ValueError):
            build_index("btree", "c")

    def test_null_values_are_not_indexed(self):
        index = HashIndex("c")
        index.add(1, None)
        assert len(index) == 0
