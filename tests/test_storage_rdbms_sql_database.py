"""Tests for the SQL dialect, the Database facade, transactions and the WAL."""

import pytest

from repro.errors import SQLSyntaxError, StorageError, TableNotFound, TransactionError
from repro.storage.rdbms.database import Database
from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.schema import Column, TableSchema
from repro.storage.rdbms.sql import SelectStatement, parse_sql
from repro.storage.rdbms.types import ColumnType
from repro.storage.rdbms.wal import WriteAheadLog


def make_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE articles (id TEXT PRIMARY KEY, outlet TEXT NOT NULL, "
        "reactions INTEGER, score FLOAT, covid BOOLEAN)"
    )
    db.execute(
        "INSERT INTO articles (id, outlet, reactions, score, covid) VALUES "
        "('a1', 'low.example.com', 50, 0.2, TRUE), "
        "('a2', 'low.example.com', 120, 0.3, TRUE), "
        "('a3', 'high.example.com', 10, 0.8, FALSE), "
        "('a4', 'high.example.com', 5, 0.9, TRUE)"
    )
    return db


class TestSqlParsing:
    def test_select_statement_structure(self):
        statement = parse_sql(
            "SELECT id, score FROM articles WHERE covid = TRUE AND reactions >= 10 "
            "ORDER BY score DESC LIMIT 5 OFFSET 2"
        )
        assert isinstance(statement, SelectStatement)
        assert statement.columns == ["id", "score"]
        assert statement.limit == 5 and statement.offset == 2
        assert statement.order_by == [("score", True)]

    def test_string_escaping(self):
        statement = parse_sql("SELECT * FROM t WHERE name = 'O''Brien'")
        assert "O'Brien" in repr(statement.where)

    def test_malformed_statements_raise(self):
        for bad in (
            "",
            "SELEC id FROM t",
            "SELECT FROM t",
            "INSERT INTO t (a) VALUES (1, 2)",
            "SELECT * FROM t WHERE",
            "DROP TABLE t",
        ):
            with pytest.raises(SQLSyntaxError):
                parse_sql(bad)


class TestDatabaseSql:
    def test_select_where_and_order(self):
        db = make_db()
        result = db.execute(
            "SELECT id FROM articles WHERE covid = TRUE ORDER BY reactions DESC LIMIT 2"
        )
        assert [row["id"] for row in result] == ["a2", "a1"]

    def test_aggregation_with_group_by(self):
        db = make_db()
        result = db.execute(
            "SELECT outlet, COUNT(*) AS n, AVG(score) AS mean_score FROM articles GROUP BY outlet"
        )
        by_outlet = {row["outlet"]: row for row in result}
        assert by_outlet["low.example.com"]["n"] == 2
        assert by_outlet["high.example.com"]["mean_score"] == pytest.approx(0.85)

    def test_update_and_delete(self):
        db = make_db()
        assert db.execute("UPDATE articles SET score = 0.5 WHERE outlet = 'low.example.com'")[0]["updated"] == 2
        assert db.get("articles", "a1")["score"] == 0.5
        assert db.execute("DELETE FROM articles WHERE reactions < 20")[0]["deleted"] == 2
        assert db.table("articles").row_count() == 2

    def test_like_and_in_predicates(self):
        db = make_db()
        assert len(db.execute("SELECT * FROM articles WHERE outlet LIKE 'low%'")) == 2
        assert len(db.execute("SELECT * FROM articles WHERE id IN ('a1', 'a4')")) == 2

    def test_is_null(self):
        db = make_db()
        db.execute("INSERT INTO articles (id, outlet) VALUES ('a5', 'x.example.com')")
        assert [r["id"] for r in db.execute("SELECT id FROM articles WHERE score IS NULL")] == ["a5"]
        assert len(db.execute("SELECT id FROM articles WHERE score IS NOT NULL")) == 4

    def test_duplicate_table_creation_rejected(self):
        db = make_db()
        with pytest.raises(StorageError):
            db.execute("CREATE TABLE articles (id TEXT PRIMARY KEY)")

    def test_unknown_table(self):
        db = make_db()
        with pytest.raises(TableNotFound):
            db.execute("SELECT * FROM missing")


class TestTransactions:
    def test_commit_keeps_changes(self):
        db = make_db()
        with db.transaction():
            db.insert("articles", {"id": "a5", "outlet": "x.example.com"})
        assert db.get("articles", "a5") is not None

    def test_exception_rolls_back(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("articles", {"id": "a6", "outlet": "x.example.com"})
                db.delete("articles", col("outlet") == "low.example.com")
                raise RuntimeError("boom")
        assert db.get("articles", "a6") is None
        assert db.table("articles").row_count() == 4

    def test_explicit_rollback(self):
        db = make_db()
        tx = db.transaction()
        db.update("articles", col("id") == "a1", {"score": 0.99})
        tx.rollback()
        assert db.get("articles", "a1")["score"] == 0.2

    def test_nested_transactions_rejected(self):
        db = make_db()
        tx = db.transaction()
        with pytest.raises(StorageError):
            db.transaction()
        tx.rollback()

    def test_finished_transaction_cannot_be_reused(self):
        db = make_db()
        tx = db.transaction()
        tx.commit()
        with pytest.raises(TransactionError):
            tx.commit()


class TestWal:
    def test_replay_restores_inserts_updates_and_deletes(self, tmp_path):
        schema = TableSchema(
            name="events",
            primary_key="id",
            columns=(
                Column("id", ColumnType.TEXT, nullable=False),
                Column("value", ColumnType.INTEGER, default=0),
                Column("created_at", ColumnType.TIMESTAMP),
            ),
        )
        db = Database(data_dir=tmp_path)
        db.create_table(schema)
        db.insert("events", {"id": "e1", "value": 1})
        db.insert("events", {"id": "e2", "value": 2})
        db.update("events", col("id") == "e1", {"value": 10})
        db.delete("events", col("id") == "e2")

        reopened = Database(data_dir=tmp_path)
        assert reopened.table("events").row_count() == 1
        assert reopened.get("events", "e1")["value"] == 10
        assert reopened.get("events", "e2") is None

    def test_checkpoint_truncates_log(self, tmp_path):
        db = Database(data_dir=tmp_path)
        db.execute("CREATE TABLE t (id TEXT PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES ('x')")
        assert len(WriteAheadLog(tmp_path / "wal.jsonl")) >= 2
        db.checkpoint()
        assert len(WriteAheadLog(tmp_path / "wal.jsonl")) == 0

    def test_wal_records_are_sequenced(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append("insert", "t", {"row": {"id": 1}})
        wal.append("insert", "t", {"row": {"id": 2}})
        records = list(wal.replay())
        assert [r.sequence for r in records] == [1, 2]
        # A new handle continues the sequence.
        wal2 = WriteAheadLog(tmp_path / "wal.jsonl")
        record = wal2.append("insert", "t", {"row": {"id": 3}})
        assert record.sequence == 3

    def test_corrupt_wal_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"sequence": 1, "operation": "insert"}\n')  # missing fields
        with pytest.raises(StorageError):
            list(WriteAheadLog(path).replay())
