"""Invariant tests for the change-data-capture pipeline.

The CDC path has four load-bearing guarantees:

* **LSN monotonicity** — every committed mutation carries a strictly
  increasing LSN, and the sequence survives WAL replay, file reopen and
  truncation (checkpointing must not recycle LSNs, or last-writer-wins
  would resurrect old versions).
* **Merge determinism** — a warehouse fed by bootstrap + deltas serves
  bit-identical rows and aggregates (float bit-patterns included) to one
  built by batch-copying the final RDBMS state.
* **Exactly-once application** — redelivered delta batches (consumer
  restart, checkpoint restore, partition interleaving) never duplicate or
  lose a row version.
* **Folding idempotence** — compaction folds delta blocks into the base
  without changing any result, repeatedly, including when old versions are
  redelivered after the fold.

Plus the crash-tail contract of the WAL file format itself.
"""

import time
from datetime import datetime, timedelta

import pytest

from repro.errors import StorageError
from repro.storage.cdc import CdcPublisher, DeltaApplier
from repro.storage.migration import MigrationJob
from repro.storage.rdbms.database import Database
from repro.storage.rdbms.expressions import col
from repro.storage.rdbms.schema import Column, ColumnType, TableSchema
from repro.storage.rdbms.wal import WalTailer, WriteAheadLog
from repro.storage.warehouse import Warehouse
from repro.streaming.broker import MessageBroker
from repro.streaming.checkpoint import CheckpointStore


def _articles_schema():
    return TableSchema(
        name="articles",
        primary_key="article_id",
        columns=(
            Column("article_id", ColumnType.TEXT, nullable=False),
            Column("outlet", ColumnType.TEXT),
            Column("score", ColumnType.FLOAT),
            Column("created_at", ColumnType.TIMESTAMP, nullable=False),
        ),
    )


def _db(rows=()):
    db = Database()
    db.create_table(_articles_schema())
    for row in rows:
        db.insert("articles", row)
    return db


def _row(article_id, created_at, outlet="x.example.com", score=0.0):
    return {
        "article_id": article_id, "outlet": outlet,
        "score": score, "created_at": created_at,
    }


def _pipeline(db, block_rows=4):
    """Database → (bootstrapped) warehouse with publisher + applier attached."""
    warehouse = Warehouse(block_rows=block_rows)
    job = MigrationJob(db, warehouse)
    job.add_table("articles", sort_key=["created_at"])
    broker = MessageBroker(default_partitions=4)
    publisher = CdcPublisher(db, broker)
    for mapping in job.mappings():
        publisher.add_mapping(mapping)
    applier = DeltaApplier(warehouse, broker, job.mappings())
    report = job.run()
    publisher.skip_to(report.cursor_lsn)
    return warehouse, job, publisher, applier


# ======================================================================
# LSN monotonicity
# ======================================================================


class TestLsnMonotonicity:
    def test_every_mutation_advances_the_lsn(self):
        db = _db()
        ts = datetime(2020, 2, 1, 12)
        seen = [db.wal_lsn()]
        db.insert("articles", _row("a0", ts))
        seen.append(db.wal_lsn())
        db.upsert("articles", _row("a0", ts, outlet="y.example.com"))
        seen.append(db.wal_lsn())
        db.delete("articles", col("article_id") == "a0")
        seen.append(db.wal_lsn())
        assert seen == sorted(set(seen))
        assert seen[-1] > seen[0]

    def test_lsns_survive_reopen_and_replay(self, tmp_path):
        db = Database(data_dir=tmp_path)
        db.create_table(_articles_schema())
        ts = datetime(2020, 2, 1, 12)
        for i in range(3):
            db.insert("articles", _row(f"a{i}", ts + timedelta(hours=i)))
        high = db.wal_lsn()

        reopened = Database(data_dir=tmp_path)
        assert reopened.table("articles").row_count() == 3
        assert reopened.wal_lsn() == high
        reopened.insert("articles", _row("a9", ts))
        assert reopened.wal_lsn() == high + 1
        sequences = [record.sequence for record in reopened.wal.replay()]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_checkpoint_truncation_does_not_recycle_lsns(self):
        db = _db([_row("a0", datetime(2020, 2, 1, 12))])
        high = db.wal_lsn()
        db.checkpoint()  # truncates the log, keeps the sequence
        db.insert("articles", _row("a1", datetime(2020, 2, 1, 13)))
        assert db.wal_lsn() == high + 1

    def test_tailer_cursor_is_monotonic_and_durable(self, tmp_path):
        wal = WriteAheadLog()
        for i in range(3):
            wal.append("insert", "t", {"row": {"k": i}})
        cursor_path = tmp_path / "cursor.json"
        tailer = WalTailer(wal, cursor_path=cursor_path)
        assert [r.sequence for r in tailer.tail()] == [1, 2, 3]
        tailer.advance(3)
        tailer.advance(1)  # stale advance is ignored
        assert tailer.cursor == 3
        assert WalTailer(wal, cursor_path=cursor_path).cursor == 3


# ======================================================================
# WAL crash-tail tolerance
# ======================================================================


class TestWalCrashTail:
    def _wal_file(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append("insert", "t", {"row": {"k": 1}})
        wal.append("insert", "t", {"row": {"k": 2}})
        return wal.path

    def test_truncated_final_line_is_dropped_not_fatal(self, tmp_path):
        path = self._wal_file(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"sequence": 3, "operation": "insert", "table": "t", "pay')
        wal = WriteAheadLog(path)
        records = list(wal.replay())
        assert [r.sequence for r in records] == [1, 2]
        # The torn tail was truncated away: the file parses cleanly now and
        # new appends continue past the surviving records.
        wal.append("insert", "t", {"row": {"k": 3}})
        assert [r.sequence for r in WriteAheadLog(path).replay()] == [1, 2, 3]

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = self._wal_file(tmp_path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "THIS IS NOT JSON")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(StorageError):
            list(WriteAheadLog(path).replay())

    def test_structurally_invalid_final_line_still_raises(self, tmp_path):
        # A complete, decodable line with missing fields is corruption, not a
        # torn write — silently dropping it would hide real damage.
        path = self._wal_file(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"sequence": 3, "operation": "insert"}\n')
        with pytest.raises(StorageError):
            list(WriteAheadLog(path).replay())


# ======================================================================
# Delta-merge determinism
# ======================================================================


class TestMergeDeterminism:
    def _batch_copy(self, db, block_rows=4):
        """The ground truth: a fresh batch copy of the current RDBMS state."""
        warehouse = Warehouse(block_rows=block_rows)
        job = MigrationJob(db, warehouse)
        job.add_table("articles", sort_key=["created_at"])
        job.run()
        return warehouse.table("articles")

    def test_merged_reads_are_bit_identical_to_a_batch_copy(self):
        ts = datetime(2020, 2, 1, 9)
        db = _db([
            _row(f"a{i}", ts + timedelta(days=i % 3, hours=i), score=i / 7)
            for i in range(10)
        ])
        warehouse, _job, publisher, applier = _pipeline(db)

        # Inserts, updates and deletes across several CDC passes, spread over
        # every partition; scores are floats with non-terminating binary
        # expansions so bit-level drift would show.
        for i in range(10, 16):
            db.insert("articles", _row(f"a{i}", ts + timedelta(days=i % 3, hours=i),
                                       score=i / 7))
        publisher.publish(); applier.apply()
        db.update("articles", col("article_id") == "a1", {"score": 99.0 / 7})
        db.delete("articles", col("article_id").is_in(["a2", "a12"]))
        publisher.publish(); applier.apply()

        merged = warehouse.table("articles")
        copied = self._batch_copy(db)
        assert merged.partitions() == copied.partitions()
        for partition in copied.partitions():
            merged_rows = list(merged.scan(partitions=[partition]))
            copied_rows = list(copied.scan(partitions=[partition]))
            assert repr(merged_rows) == repr(copied_rows)
        aggregates = {"total": ("sum", "score"), "n": ("count", "*")}
        assert repr(merged.aggregate(aggregates)) == repr(copied.aggregate(aggregates))

    def test_row_moving_partitions_is_not_double_counted(self):
        ts = datetime(2020, 2, 1, 9)
        db = _db([_row("a0", ts), _row("a1", ts + timedelta(days=1))])
        warehouse, _job, publisher, applier = _pipeline(db)

        # The update moves a0 into a1's partition: the old partition must
        # suppress it, the new one must serve the fresh version.
        db.update("articles", col("article_id") == "a0",
                  {"created_at": ts + timedelta(days=1, hours=2)})
        publisher.publish(); applier.apply()
        table = warehouse.table("articles")
        assert table.row_count() == 2
        ids = sorted(r["article_id"] for r in table.scan())
        assert ids == ["a0", "a1"]
        copied = self._batch_copy(db)
        assert repr(list(table.scan())) == repr(list(copied.scan()))


# ======================================================================
# Exactly-once application
# ======================================================================


class TestExactlyOnce:
    def test_checkpoint_restore_resumes_without_reapplying(self, tmp_path):
        ts = datetime(2020, 2, 1, 9)
        db = _db([_row("a0", ts)])
        warehouse = Warehouse(block_rows=4)
        job = MigrationJob(db, warehouse)
        job.add_table("articles", sort_key=["created_at"])
        broker = MessageBroker(default_partitions=4)
        publisher = CdcPublisher(db, broker)
        for mapping in job.mappings():
            publisher.add_mapping(mapping)
        checkpoints = CheckpointStore(tmp_path / "offsets.json")
        applier = DeltaApplier(warehouse, broker, job.mappings(),
                               checkpoints=checkpoints)
        report = job.run()
        publisher.skip_to(report.cursor_lsn)

        for i in range(1, 6):
            db.insert("articles", _row(f"a{i}", ts + timedelta(hours=i)))
        publisher.publish()
        assert applier.apply().rows == 5

        # A replacement consumer restores the committed offsets and sees an
        # empty backlog — nothing is reapplied.
        restarted = DeltaApplier(warehouse, broker, job.mappings(),
                                 checkpoints=CheckpointStore(tmp_path / "offsets.json"))
        assert restarted.lag() == 0
        assert restarted.apply().rows == 0
        assert warehouse.table("articles").row_count() == 6

    def test_redelivery_after_lost_checkpoint_is_idempotent(self):
        ts = datetime(2020, 2, 1, 9)
        db = _db([_row("a0", ts)])
        warehouse, _job, publisher, applier = _pipeline(db)
        for i in range(1, 4):
            db.insert("articles", _row(f"a{i}", ts + timedelta(hours=i)))
        db.update("articles", col("article_id") == "a1", {"score": 0.5})
        publisher.publish()
        assert applier.apply().rows >= 4
        before = repr(sorted(
            (r["article_id"], r["score"]) for r in warehouse.table("articles").scan()
        ))

        # Offsets lost: every message is redelivered from the beginning.  The
        # per-key LSN index drops every stale version, so nothing changes.
        for topic in publisher.topics():
            applier.consumer.broker.seek_to_beginning(applier.consumer.group, topic)
        assert applier.apply().rows == 0
        after = repr(sorted(
            (r["article_id"], r["score"]) for r in warehouse.table("articles").scan()
        ))
        assert warehouse.table("articles").row_count() == 4
        assert after == before

    def test_out_of_order_delivery_keeps_the_newest_version(self):
        ts = datetime(2020, 2, 1, 9)
        db = _db([_row("a0", ts)])
        warehouse, _job, _publisher, _applier = _pipeline(db)
        table = warehouse.table("articles")
        # Deliver LSN 10 before LSN 9 (broker partitions interleave): the
        # stale version must lose regardless of arrival order.
        assert table.append_deltas(
            [(10, "u", _row("a0", ts, score=1.0))], primary_key="article_id"
        ) == 1
        assert table.append_deltas(
            [(9, "u", _row("a0", ts, score=2.0))], primary_key="article_id"
        ) == 0
        (row,) = list(table.scan())
        assert row["score"] == 1.0


# ======================================================================
# Compaction folding
# ======================================================================


class TestFoldingIdempotence:
    def test_folding_preserves_results_and_is_repeatable(self):
        ts = datetime(2020, 2, 1, 9)
        db = _db([_row(f"a{i}", ts + timedelta(hours=i), score=i / 3)
                  for i in range(6)])
        # block_rows=8: one base block, so after the fold the partition sits
        # below the min_blocks threshold and the second pass is a no-op.
        warehouse, job, publisher, applier = _pipeline(db, block_rows=8)
        table = warehouse.table("articles")

        db.update("articles", col("article_id") == "a1", {"score": 7.0 / 3})
        db.delete("articles", col("article_id") == "a4")
        publisher.publish(); applier.apply()
        assert table.delta_block_count() > 0
        before = repr(list(table.scan()))

        job.run_compaction(min_blocks=2)
        assert table.delta_block_count() == 0
        assert repr(list(table.scan())) == before
        # A second pass finds nothing to fold or merge.
        assert job.run_compaction(min_blocks=2).compacted == {}
        assert repr(list(table.scan())) == before

    def test_deltas_landing_after_a_fold_merge_cleanly(self):
        ts = datetime(2020, 2, 1, 9)
        db = _db([_row(f"a{i}", ts + timedelta(hours=i)) for i in range(4)])
        warehouse, job, publisher, applier = _pipeline(db)
        table = warehouse.table("articles")

        db.update("articles", col("article_id") == "a0", {"score": 1.25})
        publisher.publish(); applier.apply()
        job.run_compaction(min_blocks=2)

        db.update("articles", col("article_id") == "a0", {"score": 2.5})
        publisher.publish(); applier.apply()
        rows = {r["article_id"]: r["score"] for r in table.scan()}
        assert rows["a0"] == 2.5
        assert table.row_count() == 4
        job.run_compaction(min_blocks=2)
        assert {r["article_id"]: r["score"] for r in table.scan()}["a0"] == 2.5
        assert table.row_count() == 4

    def test_redelivered_old_version_after_fold_does_not_resurrect(self):
        ts = datetime(2020, 2, 1, 9)
        db = _db([_row("a0", ts)])
        warehouse, job, publisher, applier = _pipeline(db)
        table = warehouse.table("articles")

        db.update("articles", col("article_id") == "a0", {"score": 4.5})
        publisher.publish(); applier.apply()
        high_lsn = db.wal_lsn()
        job.run_compaction(min_blocks=2)

        # The folded version is redelivered (its LSN is already known) —
        # exactly-once bookkeeping survives the fold.
        assert table.append_deltas(
            [(high_lsn, "u", _row("a0", ts, score=4.5))], primary_key="article_id"
        ) == 0
        assert table.delta_block_count() == 0
        (row,) = list(table.scan())
        assert row["score"] == 4.5


# ======================================================================
# End-to-end freshness
# ======================================================================


class TestWriteToVisibleLatency:
    def test_write_becomes_visible_within_one_sync_pass(self):
        ts = datetime(2020, 2, 1, 9)
        db = _db([_row("a0", ts)])
        warehouse, _job, publisher, applier = _pipeline(db)

        written_at = time.time()
        db.insert("articles", _row("a1", ts + timedelta(hours=1)))
        publisher.publish()
        report = applier.apply()
        latency = time.time() - written_at
        assert report.rows == 1
        assert any(r["article_id"] == "a1" for r in warehouse.table("articles").scan())
        assert 0.0 < report.max_latency_s <= latency + 0.001
