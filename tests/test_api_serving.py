"""Tests for the serving tier: admission, coalescing, sharding, async front end."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.api import build_gateway, build_serving_tier
from repro.api.gateway import ApiGateway
from repro.api.serving import (
    AdmissionController,
    AsyncGateway,
    HashRing,
    RequestCoalescer,
    ShardedGateway,
    TokenBucket,
)
from repro.api.service import MicroService, ServiceResponse
from repro.config import ConfigurationError, PlatformConfig, ServingConfig
from repro.errors import ServiceError


class FakeClock:
    """A manually-advanced monotonic clock for deterministic refill math."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------------- #
# Token bucket + admission
# --------------------------------------------------------------------------- #


class TestTokenBucket:
    def test_burst_then_refill_under_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=3.0, clock=clock)
        # The full burst is available immediately, then the bucket is dry.
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        # 0.05 s at 10 tokens/s refills half a token: still dry.
        clock.advance(0.05)
        assert not bucket.try_acquire()
        # Another 0.05 s completes the token.
        clock.advance(0.05)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=5.0, clock=clock)
        clock.advance(60.0)  # an hour of idle does not bank more than `burst`
        assert bucket.available() == pytest.approx(5.0)
        assert [bucket.try_acquire() for _ in range(6)] == [True] * 5 + [False]

    def test_seconds_until_reports_the_refill_deadline(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=1.0, clock=clock)
        assert bucket.seconds_until() == 0.0
        assert bucket.try_acquire()
        assert bucket.seconds_until() == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.seconds_until() == pytest.approx(0.25)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.5)


class TestAdmissionController:
    def test_per_tenant_isolation(self):
        clock = FakeClock()
        admission = AdmissionController(
            rate_per_s=1.0, burst=2.0, max_concurrent=100, clock=clock
        )
        # The abusive tenant drains its own bucket …
        decisions = [admission.try_admit("abuser") for _ in range(3)]
        assert [d.admitted for d in decisions] == [True, True, False]
        assert decisions[-1].reason == "rate"
        assert decisions[-1].retry_after_s == pytest.approx(1.0)
        # … while a polite tenant is untouched.
        assert admission.try_admit("polite").admitted
        admission.release()
        admission.release()
        admission.release()
        assert admission.stats()["throttled"] == 1

    def test_concurrency_cap_sheds_load(self):
        admission = AdmissionController(rate_per_s=1000.0, burst=1000.0, max_concurrent=2)
        assert admission.try_admit("t").admitted
        assert admission.try_admit("t").admitted
        third = admission.try_admit("t")
        assert not third.admitted and third.reason == "concurrency"
        admission.release()
        assert admission.try_admit("t").admitted
        stats = admission.stats()
        assert stats["concurrency_high_water"] == 2
        assert stats["in_flight"] == 2


class TestRouteCostWeights:
    def test_heavy_route_drains_the_bucket_faster(self):
        clock = FakeClock()
        admission = AdmissionController(
            rate_per_s=1.0, burst=8.0, max_concurrent=100, clock=clock,
            route_costs={"insights.topic": 8.0}, default_cost=1.0,
        )
        # One analytical request spends the whole burst …
        assert admission.try_admit("t", route="insights.topic").admitted
        rejected = admission.try_admit("t", route="insights.topic")
        assert not rejected.admitted and rejected.reason == "rate"
        assert rejected.retry_after_s == pytest.approx(8.0)
        # … but the same budget admits eight point reads for another tenant.
        cheap = [admission.try_admit("u", route="articles.get") for _ in range(9)]
        assert [d.admitted for d in cheap] == [True] * 8 + [False]

    def test_unknown_and_missing_routes_use_default_cost(self):
        admission = AdmissionController(
            rate_per_s=1.0, burst=4.0, max_concurrent=10,
            route_costs={"insights.topic": 4.0}, default_cost=2.0,
        )
        assert admission.route_cost("insights.topic") == 4.0
        assert admission.route_cost("articles.list") == 2.0
        assert admission.route_cost(None) == 2.0
        # A route-less try_admit (legacy call sites) spends default_cost.
        assert admission.try_admit("t").admitted
        assert admission.try_admit("t").admitted
        assert not admission.try_admit("t").admitted

    def test_invalid_costs_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(
                rate_per_s=1.0, burst=1.0, max_concurrent=1, default_cost=0.0
            )
        with pytest.raises(ValueError):
            AdmissionController(
                rate_per_s=1.0, burst=1.0, max_concurrent=1,
                route_costs={"articles.list": -1.0},
            )

    def test_front_door_charges_per_route(self):
        clock = FakeClock()
        admission = AdmissionController(
            rate_per_s=1.0, burst=4.0, max_concurrent=10, clock=clock,
            route_costs={"blocking.write": 4.0},
        )
        front, service = build_blocking_tier(n_shards=2, coalesce=False)
        front.admission = admission
        assert front.handle("blocking.write", tenant="t").ok
        throttled = front.handle("blocking.write", tenant="t")
        assert throttled.status == 429
        assert throttled.retry_after_s == pytest.approx(4.0)
        assert service.calls == 1

    def test_build_serving_tier_wires_config_weights(self, loaded_platform):
        config = ServingConfig(
            route_cost_weights=(("insights.topic", 6.0),), default_route_cost=2.0
        )
        front = build_serving_tier(loaded_platform, serving_config=config, attach=False)
        assert front.admission is not None
        assert front.admission.route_costs == {"insights.topic": 6.0}
        assert front.admission.route_cost("articles.list") == 2.0


# --------------------------------------------------------------------------- #
# Coalescing
# --------------------------------------------------------------------------- #


class BlockingService(MicroService):
    """A cacheable service whose handler blocks until the test releases it."""

    name = "blocking"
    cacheable = ("fetch",)

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0
        self.entered = threading.Event()
        self.release = threading.Event()
        self.register("fetch", self._fetch)
        self.register("write", self._write)

    def _fetch(self, request):
        self.calls += 1
        self.entered.set()
        assert self.release.wait(timeout=10.0), "test never released the handler"
        return ServiceResponse.success({"items": [1, 2, 3], "calls": self.calls})

    def _write(self, request):
        self.calls += 1
        return ServiceResponse.success({"calls": self.calls})


def build_blocking_tier(n_shards: int = 2, coalesce: bool = True):
    service = BlockingService()

    def factory(index: int) -> ApiGateway:
        gateway = ApiGateway()
        gateway.mount(service)
        return gateway

    front = ShardedGateway(factory, n_shards, coalesce=coalesce)
    return front, service


class TestCoalescing:
    def test_identical_inflight_reads_execute_once_and_fan_out(self):
        front, service = build_blocking_tier()
        n_followers = 4
        responses: list[ServiceResponse] = []
        responses_lock = threading.Lock()

        def call():
            response = front.handle("blocking.fetch", {"page": 1})
            with responses_lock:
                responses.append(response)

        leader = threading.Thread(target=call)
        leader.start()
        assert service.entered.wait(timeout=10.0)
        followers = [threading.Thread(target=call) for _ in range(n_followers)]
        for thread in followers:
            thread.start()
        # Wait until every follower has joined the in-flight batch, then let
        # the single leader execution finish.
        deadline = time.monotonic() + 10.0
        while front.coalescer.coalesced_total < n_followers:
            assert time.monotonic() < deadline, "followers never coalesced"
            time.sleep(0.001)
        service.release.set()
        leader.join(timeout=10.0)
        for thread in followers:
            thread.join(timeout=10.0)

        assert service.calls == 1  # the herd executed exactly once
        assert len(responses) == n_followers + 1
        first = responses[0]
        for response in responses[1:]:
            assert response.status == 200
            assert response.payload == first.payload          # bit-identical …
        payload_ids = {id(response.payload) for response in responses}
        assert len(payload_ids) == len(responses)             # … but never shared
        assert front.coalescer.stats()["coalesced"] == n_followers

    def test_non_cacheable_routes_never_coalesce(self):
        front, service = build_blocking_tier()
        for _ in range(3):
            assert front.handle("blocking.write").ok
        assert service.calls == 3
        assert front.coalescer.stats()["leaders"] == 0
        assert front.coalescer.stats()["coalesced"] == 0

    def test_leader_exception_propagates_to_followers(self):
        coalescer = RequestCoalescer()
        entered = threading.Event()
        release = threading.Event()

        def boom():
            entered.set()
            assert release.wait(timeout=10.0)
            raise RuntimeError("backend down")

        errors: list[BaseException] = []

        def leader_call():
            try:
                coalescer.execute("k", boom)
            except RuntimeError as exc:
                errors.append(exc)

        def follower_call():
            try:
                coalescer.execute("k", boom)
            except RuntimeError as exc:
                errors.append(exc)

        leader = threading.Thread(target=leader_call)
        leader.start()
        assert entered.wait(timeout=10.0)
        follower = threading.Thread(target=follower_call)
        follower.start()
        deadline = time.monotonic() + 10.0
        while coalescer.coalesced_total < 1:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        release.set()
        leader.join(timeout=10.0)
        follower.join(timeout=10.0)
        assert len(errors) == 2 and all("backend down" in str(e) for e in errors)
        assert coalescer.in_flight() == 0


# --------------------------------------------------------------------------- #
# Consistent-hash ring + sharded front door
# --------------------------------------------------------------------------- #


class TestHashRing:
    def test_routing_is_deterministic(self):
        ring = HashRing(replicas=32)
        for index in range(4):
            ring.add_node(f"shard-{index}")
        keys = [("articles.list", str(i)) for i in range(500)]
        first = [ring.node_for(key) for key in keys]
        second = [ring.node_for(key) for key in keys]
        assert first == second
        assert set(first) == {f"shard-{i}" for i in range(4)}  # every shard used

    def test_add_remove_moves_about_one_nth_of_keys(self):
        ring = HashRing(replicas=64)
        for index in range(4):
            ring.add_node(f"shard-{index}")
        keys = [("route", i) for i in range(4000)]
        before = {key: ring.node_for(key) for key in keys}

        ring.add_node("shard-4")
        after_add = {key: ring.node_for(key) for key in keys}
        moved = sum(1 for key in keys if before[key] != after_add[key])
        # Ideal is 1/5 = 20%; allow vnode-placement slack but far below the
        # ~80% a modulo rehash would move.
        assert 0 < moved / len(keys) < 0.40
        # Keys that moved all moved TO the new shard (no unrelated churn).
        assert all(
            after_add[key] == "shard-4" for key in keys if before[key] != after_add[key]
        )

        ring.remove_node("shard-4")
        after_remove = {key: ring.node_for(key) for key in keys}
        assert after_remove == before  # removal restores the old placement

    def test_duplicate_and_missing_nodes_raise(self):
        ring = HashRing()
        ring.add_node("a")
        with pytest.raises(ValueError):
            ring.add_node("a")
        with pytest.raises(ValueError):
            ring.remove_node("b")
        ring.remove_node("a")
        with pytest.raises(ValueError):
            ring.node_for("anything")


class TestShardedGateway:
    def test_same_key_same_shard_and_shard_resize(self):
        front, _service = build_blocking_tier(n_shards=4, coalesce=False)
        keys = [("blocking.write", {"i": i}) for i in range(200)]
        placement = {i: front.shard_for(route, params) for i, (route, params) in enumerate(keys)}
        assert placement == {
            i: front.shard_for(route, params) for i, (route, params) in enumerate(keys)
        }
        new_name = front.add_shard()
        assert new_name == "shard-4"
        resized = {i: front.shard_for(route, params) for i, (route, params) in enumerate(keys)}
        moved = sum(1 for i in placement if placement[i] != resized[i])
        assert 0 < moved < len(keys) * 0.5
        front.remove_shard(new_name)
        assert placement == {
            i: front.shard_for(route, params) for i, (route, params) in enumerate(keys)
        }
        with pytest.raises(ServiceError):
            front.remove_shard("no-such-shard")

    def test_throttled_requests_get_429_and_reach_no_shard(self):
        clock = FakeClock()
        admission = AdmissionController(
            rate_per_s=1.0, burst=1.0, max_concurrent=10, clock=clock
        )
        front, service = build_blocking_tier(n_shards=2, coalesce=False)
        front.admission = admission
        assert front.handle("blocking.write", tenant="t1").ok
        throttled = front.handle("blocking.write", tenant="t1")
        assert throttled.status == 429 and not throttled.ok
        assert throttled.retry_after_s == pytest.approx(1.0)
        assert "throttled" in throttled.error
        assert service.calls == 1  # the rejected request touched no backend
        clock.advance(1.0)
        assert front.handle("blocking.write", tenant="t1").ok
        stats = front.stats()
        assert stats["admission"]["admitted"] == 2
        assert stats["admission"]["throttled"] == 1
        assert stats["requests"] == 3

    def test_stats_reports_per_shard_counters(self):
        front, _service = build_blocking_tier(n_shards=3, coalesce=False)
        for index in range(20):
            front.handle("blocking.write", {"i": index})
        stats = front.stats()
        assert stats["enabled"] and stats["shards"] == 3
        per_shard_requests = {
            name: shard["requests"] for name, shard in stats["per_shard"].items()
        }
        assert sum(per_shard_requests.values()) == 20
        assert front.request_count == 20

    def test_single_shard_minimum(self):
        with pytest.raises(ServiceError):
            ShardedGateway(lambda index: ApiGateway(), 0)


class TestServingConfig:
    def test_defaults_validate(self):
        PlatformConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"ring_replicas": 0},
            {"admission_rate_per_s": 0.0},
            {"admission_burst": 0.0},
            {"max_concurrency": 0},
            {"async_workers": 0},
            {"route_cost_weights": (("articles.list", 0.0),)},
            {"route_cost_weights": (("", 2.0),)},
            {"default_route_cost": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServingConfig(**kwargs).validate()


# --------------------------------------------------------------------------- #
# Platform integration + async parity
# --------------------------------------------------------------------------- #


class TestServingTierIntegration:
    @pytest.fixture(scope="class")
    def serving_tier(self, loaded_platform):
        return build_serving_tier(loaded_platform)

    def test_platform_status_reports_serving_counters(self, loaded_platform, serving_tier):
        assert serving_tier.handle("articles.list", {"limit": 3}).ok
        serving = loaded_platform.status()["serving"]
        assert serving["enabled"]
        assert serving["requests"] >= 1
        assert serving["admission"]["admitted"] >= 1
        assert set(serving["per_shard"]) == set(serving_tier.shard_names())

    def test_routes_match_single_gateway(self, loaded_platform, serving_tier):
        assert serving_tier.routes() == build_gateway(loaded_platform).routes()
        assert "articles.search" in serving_tier.routes()

    def test_unknown_operation_is_structured_404(self, serving_tier):
        response = serving_tier.handle("articles.nope")
        assert response.status == 404
        assert "articles.list" in response.error

    def test_async_gateway_parity_with_sync_dispatch(self, loaded_platform, serving_tier):
        requests = [
            ("articles.list", {"limit": 5}),
            ("articles.outlets", None),
            ("insights.newsroom_activity", {"topic": "covid19"}),
            ("articles.list", {"limit": 5}),
            ("articles.nope", None),
        ]
        sync_gateway = build_gateway(loaded_platform)
        sync_responses = [sync_gateway.handle(route, params) for route, params in requests]

        async def drive():
            with AsyncGateway(serving_tier, max_workers=4) as front:
                return await front.handle_many(requests, tenant="async-tenant")

        async_responses = asyncio.run(drive())
        assert [r.status for r in async_responses] == [r.status for r in sync_responses]
        for sync_response, async_response in zip(sync_responses, async_responses):
            assert async_response.payload == sync_response.payload

    def test_async_gateway_over_plain_gateway(self, loaded_platform):
        gateway = build_gateway(loaded_platform)

        async def drive():
            with AsyncGateway(gateway, max_workers=2) as front:
                return await front.handle("articles.list", {"limit": 2}, tenant=None)

        response = asyncio.run(drive())
        assert response.ok and len(response.payload["articles"]) <= 2
