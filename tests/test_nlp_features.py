"""Tests for n-gram features, hashing and similarity measures."""

from collections import Counter

import numpy as np
import pytest

from repro.nlp.features import bag_of_words, hashed_features, ngram_strings, ngrams, vocabulary
from repro.nlp.similarity import (
    cosine_similarity,
    counter_distance,
    jaccard_similarity,
    token_overlap,
)
from repro.nlp.stopwords import STOPWORDS, is_stopword, remove_stopwords


class TestStopwords:
    def test_common_words_are_stopwords(self):
        assert is_stopword("the")
        assert is_stopword("The")
        assert not is_stopword("pandemic")

    def test_remove_stopwords(self):
        assert remove_stopwords(["the", "virus", "is", "spreading"]) == ["virus", "spreading"]

    def test_stopword_set_is_reasonably_sized(self):
        assert len(STOPWORDS) > 100


class TestNgrams:
    def test_unigrams_and_bigrams(self):
        tokens = ["a", "b", "c"]
        assert ngrams(tokens, 1) == [("a",), ("b",), ("c",)]
        assert ngrams(tokens, 2) == [("a", "b"), ("b", "c")]
        assert ngram_strings(tokens, 2) == ["a b", "b c"]

    def test_n_larger_than_sequence(self):
        assert ngrams(["a"], 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestBagOfWords:
    def test_counts_and_stopword_removal(self):
        counts = bag_of_words("The virus spreads and the virus mutates")
        assert counts["virus"] == 2
        assert "the" not in counts

    def test_ngram_range(self):
        counts = bag_of_words("coronavirus outbreak grows", ngram_range=(1, 2), drop_stopwords=False)
        assert counts["coronavirus outbreak"] == 1
        assert counts["coronavirus"] == 1

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            bag_of_words("text", ngram_range=(2, 1))

    def test_vocabulary_min_count(self):
        vocab = vocabulary(["virus virus outbreak", "virus response"], min_count=2)
        assert "virus" in vocab
        assert "outbreak" not in vocab


class TestHashedFeatures:
    def test_deterministic_and_normalised(self):
        a = hashed_features("coronavirus outbreak in the city", n_features=256)
        b = hashed_features("coronavirus outbreak in the city", n_features=256)
        assert np.allclose(a, b)
        assert np.linalg.norm(a) == pytest.approx(1.0)

    def test_empty_text_gives_zero_vector(self):
        assert np.linalg.norm(hashed_features("", n_features=64)) == 0.0

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            hashed_features("text", n_features=0)

    def test_similar_texts_are_closer_than_dissimilar(self):
        a = hashed_features("coronavirus outbreak pandemic quarantine")
        b = hashed_features("coronavirus pandemic lockdown quarantine")
        c = hashed_features("spacecraft telescope asteroid galaxy")
        assert cosine_similarity(a, b) > cosine_similarity(a, c)


class TestSimilarity:
    def test_cosine_on_vectors(self):
        assert cosine_similarity([1, 0], [1, 0]) == pytest.approx(1.0)
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    def test_cosine_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity([1, 2], [1, 2, 3])

    def test_cosine_on_counters(self):
        a = Counter({"virus": 2, "outbreak": 1})
        b = Counter({"virus": 1, "response": 1})
        assert 0.0 < cosine_similarity(a, b) < 1.0
        assert counter_distance(a, a) == pytest.approx(0.0)

    def test_jaccard(self):
        assert jaccard_similarity(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard_similarity([], []) == 1.0

    def test_token_overlap(self):
        assert token_overlap("virus outbreak", "virus outbreak") == 1.0
        assert token_overlap("virus outbreak", "galaxy telescope") == 0.0
