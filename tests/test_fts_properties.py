"""Property-based differential tests for the full-text search subsystem.

Every property pits the engine (``repro.storage.fts``) against the
independent brute-force oracle in :mod:`fts_oracle` — separate tokenizer,
separate query parser, separate BM25 arithmetic — and demands *exact*
agreement: token lists compare with ``==``, scores compare with float ``==``
(the two implementations keep their arithmetic expressions textually
identical, so this is well-defined).

Covered invariants:

* tokenizer differential — ``word_tokens`` ≡ the oracle's scanner on
  arbitrary unicode, plus folding idempotence;
* search differential — ``FtsIndex.search``/``match_ids`` ≡ oracle on
  arbitrary corpora and queries (exact and prefix terms);
* incremental ≡ rebuild — a CDC-style add/update/delete history with
  interleaved segment flushes lands the same postings as indexing only each
  document's final state;
* durability — flush + recover on a fresh index reproduces the postings
  snapshot; compaction preserves it bit-for-bit and segment building is
  byte-deterministic.

Run with ``--hypothesis-profile=fts-ci`` for the derandomized CI stream.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from fts_oracle import FtsOracle, oracle_fold, oracle_query_terms, oracle_tokens
from repro.nlp.tokenize import fold_token, word_tokens
from repro.storage.fts import FtsIndex, parse_query
from repro.storage.warehouse.dfs import DistributedFileSystem

relaxed = settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)

# --------------------------------------------------------------- strategies

#: Arbitrary unicode text, small enough to keep shrinking fast.
doc_text = st.text(max_size=60)


@st.composite
def corpus_and_query(draw):
    """A corpus plus a query biased to actually hit it.

    Half the chunks come from tokens present in the corpus (possibly
    truncated, possibly starred into prefix terms), half are arbitrary text —
    so both the match and no-match paths are exercised.
    """
    texts = draw(st.lists(doc_text, min_size=0, max_size=6))
    tokens = sorted({token for text in texts for token in oracle_tokens(text)})
    chunks = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if tokens and draw(st.booleans()):
            token = draw(st.sampled_from(tokens))
            chunk = token[: draw(st.integers(min_value=1, max_value=len(token)))]
            if draw(st.booleans()):
                chunk += "*"
        else:
            chunk = draw(
                st.text(min_size=1, max_size=8).filter(lambda s: s.split() != [])
            )
        chunks.append(chunk)
    return texts, " ".join(chunks)


@st.composite
def edit_history(draw):
    """A CDC-style history: (doc_id, text-or-None) ops over a small id pool,
    plus the op indexes after which the incremental index flushes a segment."""
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.one_of(st.none(), doc_text),
            ),
            min_size=1,
            max_size=12,
        )
    )
    flush_after = draw(
        st.sets(st.integers(min_value=0, max_value=len(ops) - 1), max_size=4)
    )
    return ops, flush_after


def apply_history(index: FtsIndex, ops, flush_after) -> None:
    for lsn, (doc, text) in enumerate(ops, start=1):
        doc_id = f"d{doc}"
        if text is None:
            index.delete(doc_id, lsn=lsn)
        else:
            index.add(doc_id, text=text, lsn=lsn)
        if lsn - 1 in flush_after:
            index.flush()


def rebuilt_from_final_state(ops) -> FtsIndex:
    """An index fed only each document's *final* op, at its original LSN."""
    final: dict[str, tuple[int, str | None]] = {}
    for lsn, (doc, text) in enumerate(ops, start=1):
        final[f"d{doc}"] = (lsn, text)
    index = FtsIndex("rebuilt", flush_docs=None)
    for doc_id in sorted(final):
        lsn, text = final[doc_id]
        if text is None:
            index.delete(doc_id, lsn=lsn)
        else:
            index.add(doc_id, text=text, lsn=lsn)
    return index


# ------------------------------------------------------- tokenizer differential


@relaxed
@given(doc_text)
def test_word_tokens_match_oracle(text):
    assert word_tokens(text) == oracle_tokens(text)


@relaxed
@given(doc_text)
def test_fold_token_is_idempotent_and_lowercase(text):
    for token in word_tokens(text):
        assert fold_token(token) == token  # already folded by the tokenizer
        assert token == token.lower()
        assert oracle_fold(token) == token


@relaxed
@given(st.text(max_size=30))
def test_query_parse_matches_oracle(query):
    engine = [(term.term, term.prefix) for term in parse_query(query)]
    assert engine == oracle_query_terms(query)


# ---------------------------------------------------------- search differential


@relaxed
@given(corpus_and_query())
def test_search_matches_oracle_exactly(case):
    texts, query = case
    index = FtsIndex("prop", flush_docs=None)
    oracle = FtsOracle()
    for i, text in enumerate(texts):
        index.add(f"d{i}", text=text)
        oracle.add(f"d{i}", text)
    assert index.match_ids(query) == oracle.match_ids(query)
    # Scores must agree with float ==, ordering included.
    assert index.search(query) == oracle.search(query)


@relaxed
@given(corpus_and_query(), st.integers(min_value=0, max_value=3))
def test_search_limit_is_a_prefix_of_the_full_ranking(case, limit):
    texts, query = case
    index = FtsIndex("prop", flush_docs=None)
    for i, text in enumerate(texts):
        index.add(f"d{i}", text=text)
    assert index.search(query, limit=limit) == index.search(query)[:limit]


@relaxed
@given(st.lists(doc_text, min_size=0, max_size=6))
def test_empty_and_punctuation_queries_match_nothing(texts):
    index = FtsIndex("prop", flush_docs=None)
    for i, text in enumerate(texts):
        index.add(f"d{i}", text=text)
    for query in ("", "   ", "...", "!?*", "* *"):
        assert index.match_ids(query) == set()
        assert index.search(query) == []


# ------------------------------------------------------ incremental ≡ rebuild


@relaxed
@given(edit_history())
def test_incremental_equals_rebuild(case):
    ops, flush_after = case
    dfs = DistributedFileSystem(n_nodes=3, replication=2)
    incremental = FtsIndex("inc", dfs=dfs, flush_docs=None)
    apply_history(incremental, ops, flush_after)
    rebuilt = rebuilt_from_final_state(ops)
    assert incremental.postings_snapshot() == rebuilt.postings_snapshot()
    assert incremental.doc_count == rebuilt.doc_count
    assert incremental.total_tokens == rebuilt.total_tokens


@relaxed
@given(edit_history())
def test_redelivery_is_idempotent(case):
    ops, flush_after = case
    index = FtsIndex("redeliver", flush_docs=None)
    apply_history(index, ops, flush_after=set())
    before = index.postings_snapshot()
    # Redeliver the whole history (stale LSNs): nothing may change.
    for lsn, (doc, text) in enumerate(ops, start=1):
        doc_id = f"d{doc}"
        if text is None:
            assert index.delete(doc_id, lsn=lsn) is False
        else:
            assert index.add(doc_id, text=text, lsn=lsn) is False
    assert index.postings_snapshot() == before


# ----------------------------------------------------------------- durability


@relaxed
@given(edit_history())
def test_flush_recover_roundtrip(case):
    ops, flush_after = case
    dfs = DistributedFileSystem(n_nodes=3, replication=2)
    index = FtsIndex("dur", dfs=dfs, flush_docs=None)
    apply_history(index, ops, flush_after)
    index.flush()
    reopened = FtsIndex("dur", dfs=dfs, flush_docs=None)
    report = reopened.recover()
    assert report["adopted"] is True
    assert reopened.postings_snapshot() == index.postings_snapshot()
    assert reopened.doc_count == index.doc_count
    assert reopened.total_tokens == index.total_tokens


@relaxed
@given(edit_history(), corpus_and_query())
def test_compaction_preserves_postings_and_scores(history, case):
    ops, flush_after = history
    _texts, query = case
    dfs = DistributedFileSystem(n_nodes=3, replication=2)
    index = FtsIndex("compact", dfs=dfs, flush_docs=None)
    apply_history(index, ops, flush_after)
    index.flush()
    before_snapshot = index.postings_snapshot()
    before_search = index.search(query)
    index.compact()
    assert index.postings_snapshot() == before_snapshot
    assert index.search(query) == before_search
    # Compacting a compacted index is a no-op (≤ 1 segment).
    stats = index.stats()
    index.compact()
    assert index.stats() == stats
    assert index.postings_snapshot() == before_snapshot


@relaxed
@given(st.lists(doc_text, min_size=0, max_size=6))
def test_segment_build_is_byte_deterministic(texts):
    from repro.storage.fts import analyze, build_segment_from_docs

    docs = [(f"d{i}", i + 1, analyze(text)) for i, text in enumerate(texts)]
    assert build_segment_from_docs(7, docs) == build_segment_from_docs(7, docs)
