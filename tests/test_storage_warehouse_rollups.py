"""Tests for the incremental materialized roll-up subsystem.

Parity discipline: every materialized read must reproduce the live
``WarehouseTable.aggregate`` result exactly (``repr`` equality, so float
bit-patterns count) after appends, compaction rewrites and partition drops;
refreshes must re-read only the partitions whose block identity changed
(verified through the DFS read counter); and serving must fail over to the
live path — never to stale numbers — whenever the state lags the table.
"""

import random
from datetime import datetime, timedelta

import pytest

from repro.config import PlatformConfig, StorageConfig
from repro.core.analytics import (
    ARTICLES_PER_OUTLET_ROLLUP,
    DAILY_ARTICLE_COUNTS_ROLLUP,
    standing_rollup_specs,
    topic_articles_rollup_name,
)
from repro.core.platform import SciLensPlatform
from repro.errors import WarehouseError
from repro.models import Article, Outlet, RatingClass
from repro.storage.cdc import CdcPublisher, DeltaApplier
from repro.storage.migration import MigrationJob
from repro.storage.rdbms.database import Database
from repro.storage.rdbms.schema import Column, ColumnType, TableSchema
from repro.storage.warehouse import RollupSpec, Warehouse
from repro.streaming.broker import MessageBroker

AGGS = {
    "n": ("count", "*"),
    "scored": ("count", "score"),
    "total": ("sum", "weight"),
    "mean": ("avg", "weight"),
    "lo": ("min", "score"),
    "hi": ("max", "score"),
    "kinds": ("count_distinct", "kind"),
}


def _events_warehouse(n=600, cache_blocks=64, seed=7, block_rows=48):
    rng = random.Random(seed)
    warehouse = Warehouse(block_rows=block_rows, cache_blocks=cache_blocks)
    table = warehouse.create_table(
        "events", ["day", "outlet", "kind", "score", "weight"], "day",
        partition_by="value",
    )
    table.append(_event_rows(rng, n))
    return warehouse, table


def _event_rows(rng, n, days=4):
    return [
        {
            "day": f"2020-02-{1 + i % days:02d}",
            "outlet": f"outlet-{rng.randrange(6)}",
            "kind": f"kind-{rng.randrange(3)}",
            "score": rng.randrange(1000) if i % 11 else None,
            "weight": rng.random(),
        }
        for i in range(n)
    ]


def _spec(**overrides):
    base = dict(
        name="events_by_outlet", table="events", aggregates=AGGS,
        group_by=("outlet",),
    )
    base.update(overrides)
    return RollupSpec(**base)


def _assert_parity(table, rollup):
    live = table.aggregate(
        rollup.spec.aggregates,
        column_predicates=rollup.spec.column_predicates,
        group_by=list(rollup.spec.group_by) or None,
        group_key=rollup.spec.group_key,
    )
    materialized = rollup.result()
    if rollup.spec.group_by:
        assert sorted(materialized) == sorted(live)
        assert repr(sorted(materialized.items())) == repr(sorted(live.items()))
    else:
        assert repr(materialized) == repr(live)


class TestRollupSpec:
    def test_rejects_empty_name_and_aggregates(self):
        with pytest.raises(WarehouseError):
            RollupSpec(name="", table="t", aggregates={"n": ("count", "*")})
        with pytest.raises(WarehouseError):
            RollupSpec(name="r", table="t", aggregates={})

    def test_rejects_unknown_function_and_star_misuse(self):
        with pytest.raises(WarehouseError):
            RollupSpec(name="r", table="t", aggregates={"n": ("median", "x")})
        with pytest.raises(WarehouseError):
            RollupSpec(name="r", table="t", aggregates={"n": ("sum", "*")})

    def test_registration_validates_table_and_columns(self):
        warehouse, _table = _events_warehouse(n=10)
        with pytest.raises(WarehouseError):
            warehouse.register_rollup(_spec(table="missing"))
        with pytest.raises(WarehouseError):
            warehouse.register_rollup(_spec(group_by=("nope",)))
        with pytest.raises(WarehouseError):
            warehouse.register_rollup(
                _spec(aggregates={"n": ("count", "missing_column")})
            )
        with pytest.raises(WarehouseError):
            warehouse.register_rollup(
                _spec(column_predicates={"missing": lambda v: True})
            )

    def test_duplicate_registration_rejected(self):
        warehouse, _table = _events_warehouse(n=10)
        warehouse.register_rollup(_spec())
        with pytest.raises(WarehouseError):
            warehouse.register_rollup(_spec())


class TestRollupParity:
    def test_grouped_parity_after_initial_refresh(self):
        warehouse, table = _events_warehouse()
        rollup = warehouse.register_rollup(_spec(), refresh=True)
        assert rollup.is_fresh()
        _assert_parity(table, rollup)

    def test_ungrouped_parity(self):
        warehouse, table = _events_warehouse()
        rollup = warehouse.register_rollup(
            _spec(name="events_total", group_by=()), refresh=True
        )
        _assert_parity(table, rollup)

    def test_multi_column_group_parity(self):
        warehouse, table = _events_warehouse()
        rollup = warehouse.register_rollup(
            _spec(name="by_outlet_kind", group_by=("outlet", "kind")),
            refresh=True,
        )
        _assert_parity(table, rollup)

    def test_group_key_parity(self):
        warehouse, table = _events_warehouse()
        rollup = warehouse.register_rollup(
            _spec(
                name="by_outlet_suffix",
                group_key=lambda outlet: outlet.rsplit("-", 1)[-1],
            ),
            refresh=True,
        )
        _assert_parity(table, rollup)

    def test_column_predicate_parity(self):
        warehouse, table = _events_warehouse()
        rollup = warehouse.register_rollup(
            _spec(
                name="high_scores",
                column_predicates={"score": lambda s: s is not None and s >= 500},
            ),
            refresh=True,
        )
        _assert_parity(table, rollup)

    def test_parity_after_appends_compaction_and_drops(self):
        rng = random.Random(23)
        warehouse, table = _events_warehouse(seed=23)
        rollup = warehouse.register_rollup(_spec(), refresh=True)

        # New rows land in existing partitions and a brand-new one.
        table.append(_event_rows(rng, 120, days=5))
        rollup.refresh()
        _assert_parity(table, rollup)

        # Compaction rewrites every fragmented partition's block set.
        warehouse.compact(table="events")
        rollup.refresh()
        _assert_parity(table, rollup)

        # Dropping a partition removes its materialized state.
        table.drop_partition("2020-02-02")
        report = rollup.refresh()
        assert report.dropped_partitions == ("2020-02-02",)
        _assert_parity(table, rollup)

    def test_result_is_a_caller_owned_copy(self):
        warehouse, table = _events_warehouse(n=40)
        rollup = warehouse.register_rollup(_spec(), refresh=True)
        first = rollup.result()
        key = next(iter(first))
        first[key]["n"] = -999
        assert rollup.result()[key]["n"] != -999


class TestIncrementalRefresh:
    def test_refresh_is_metadata_only_when_nothing_changed(self):
        # cache_blocks=0: every block access is an observable DFS read.
        warehouse, table = _events_warehouse(cache_blocks=0)
        rollup = warehouse.register_rollup(_spec(), refresh=True)
        reads_before = warehouse.dfs.read_count
        report = rollup.refresh()
        assert not report.changed
        assert warehouse.dfs.read_count == reads_before

    def test_refresh_reads_only_changed_partitions(self):
        warehouse, table = _events_warehouse(cache_blocks=0)
        rollup = warehouse.register_rollup(_spec(), refresh=True)

        table.append([{
            "day": "2020-02-03", "outlet": "outlet-9", "kind": "kind-0",
            "score": 1, "weight": 0.5,
        }])
        reads_before = warehouse.dfs.read_count
        report = rollup.refresh()
        assert report.refreshed_partitions == ("2020-02-03",)
        # Exactly the changed partition's blocks were re-read — nothing else.
        assert warehouse.dfs.read_count - reads_before == len(
            table.partition_signature("2020-02-03")
        )
        _assert_parity(table, rollup)

    def test_drop_refresh_reads_nothing(self):
        warehouse, table = _events_warehouse(cache_blocks=0)
        rollup = warehouse.register_rollup(_spec(), refresh=True)
        table.drop_partition("2020-02-04")
        reads_before = warehouse.dfs.read_count
        report = rollup.refresh()
        assert report.dropped_partitions == ("2020-02-04",)
        assert report.refreshed_partitions == ()
        assert warehouse.dfs.read_count == reads_before
        _assert_parity(table, rollup)

    def test_serving_is_zero_dfs_reads(self):
        warehouse, table = _events_warehouse(cache_blocks=0)
        rollup = warehouse.register_rollup(_spec(), refresh=True)
        reads_before = warehouse.dfs.read_count
        for _ in range(3):
            assert rollup.result_if_fresh() is not None
        assert warehouse.dfs.read_count == reads_before


class TestStalenessAndServing:
    def test_stale_after_append_until_refresh(self):
        warehouse, table = _events_warehouse(n=60)
        rollup = warehouse.register_rollup(_spec(), refresh=True)
        assert rollup.result_if_fresh() is not None
        table.append([{
            "day": "2020-02-01", "outlet": "outlet-0", "kind": "kind-1",
            "score": 3, "weight": 0.1,
        }])
        assert not rollup.is_fresh()
        assert rollup.stale_partitions() == ["2020-02-01"]
        assert rollup.result_if_fresh() is None
        assert warehouse.rollups.serve("events_by_outlet") is None
        rollup.refresh()
        assert warehouse.rollups.serve("events_by_outlet") is not None

    def test_serve_unknown_rollup_returns_none(self):
        warehouse, _table = _events_warehouse(n=20)
        assert warehouse.rollups.serve("nope") is None

    def test_unregister_and_names(self):
        warehouse, _table = _events_warehouse(n=20)
        warehouse.register_rollup(_spec())
        assert warehouse.rollups.names() == ["events_by_outlet"]
        warehouse.rollups.unregister("events_by_outlet")
        assert warehouse.rollups.names() == []
        with pytest.raises(WarehouseError):
            warehouse.rollups.unregister("events_by_outlet")

    def test_drop_table_discards_its_rollups(self):
        warehouse, _table = _events_warehouse(n=20)
        warehouse.register_rollup(_spec(), refresh=True)
        warehouse.drop_table("events")
        assert warehouse.rollups.names() == []

    def test_fresh_partition_groups(self):
        warehouse, table = _events_warehouse()
        rollup = warehouse.register_rollup(_spec(), refresh=True)
        groups = rollup.fresh_partition_groups()
        assert groups is not None
        assert set(groups) == set(table.partitions())
        for partition, outlets in groups.items():
            live = table.aggregate(
                {"n": ("count", "*")}, partitions=[partition], group_by="outlet"
            )
            assert outlets == set(live)
        table.append([{
            "day": "2020-02-01", "outlet": "outlet-0", "kind": "kind-1",
            "score": 3, "weight": 0.1,
        }])
        assert rollup.fresh_partition_groups() is None


class TestMigrationRefresh:
    def _job(self):
        db = Database()
        schema = TableSchema(
            name="articles",
            primary_key="article_id",
            columns=(
                Column("article_id", ColumnType.TEXT, nullable=False),
                Column("outlet", ColumnType.TEXT),
                Column("created_at", ColumnType.TIMESTAMP, nullable=False),
            ),
        )
        db.create_table(schema)
        warehouse = Warehouse(block_rows=4)
        job = MigrationJob(db, warehouse, compaction_min_blocks=2)
        job.add_table("articles")
        spec = RollupSpec(
            name="articles_by_outlet", table="articles",
            aggregates={"articles": ("count", "*")}, group_by=("outlet",),
        )
        rollup = warehouse.register_rollup(spec)
        return db, warehouse, job, rollup

    def test_migration_run_refreshes_rollups(self):
        db, warehouse, job, rollup = self._job()
        base = datetime(2020, 2, 1, 9)
        for i in range(6):
            db.insert("articles", {
                "article_id": f"a{i}", "outlet": f"o{i % 2}",
                "created_at": base + timedelta(days=i % 2, hours=i),
            })
        report = job.run()
        assert report.rollups_refreshed == {"articles_by_outlet": 2}
        assert rollup.is_fresh()
        served = rollup.result_if_fresh()
        assert served is not None
        assert {k: v["articles"] for k, v in served.items()} == {"o0": 3, "o1": 3}
        # A second run with no new rows is a metadata-only refresh.
        assert job.run().rollups_refreshed == {}

    def test_run_with_compaction_refreshes_after_the_rewrite(self):
        db, warehouse, job, rollup = self._job()
        publisher = CdcPublisher(db, MessageBroker(default_partitions=2))
        applier = None
        base = datetime(2020, 2, 1, 9)
        for batch in range(3):
            for i in range(4):
                db.insert("articles", {
                    "article_id": f"a{batch}-{i}", "outlet": f"o{i % 2}",
                    "created_at": base + timedelta(hours=batch * 4 + i),
                })
            if applier is None:
                # First batch bootstraps; later batches land as delta blocks.
                report = job.run()
                for mapping in job.mappings():
                    publisher.add_mapping(mapping)
                applier = DeltaApplier(warehouse, publisher.broker, job.mappings())
                publisher.skip_to(report.cursor_lsn)
            else:
                publisher.publish()
                applier.apply()
        table = warehouse.table("articles")
        assert table.block_count() > 1
        report = job.run(compact=True)
        # The migration itself deferred its refresh to the compaction pass.
        assert report.rollups_refreshed == {}
        assert job.compaction_history[-1].rollups_refreshed == {
            "articles_by_outlet": 1
        }
        assert rollup.is_fresh()
        _assert_parity(table, rollup)

    def test_refresh_can_be_disabled(self):
        db, warehouse, job, rollup = self._job()
        job.refresh_rollups = False
        db.insert("articles", {
            "article_id": "a0", "outlet": "o0",
            "created_at": datetime(2020, 2, 1, 9),
        })
        report = job.run()
        assert report.rollups_refreshed == {}
        assert not rollup.is_fresh()


class TestPlatformStandingRollups:
    def _platform(self, enabled=True):
        config = PlatformConfig(
            storage=StorageConfig(warehouse_rollups_enabled=enabled)
        )
        platform = SciLensPlatform(config)
        base = datetime(2020, 2, 1, 9)
        ratings = list(RatingClass)
        for i in range(36):
            domain = f"outlet-{i % 4}.example.com"
            platform.register_outlet(Outlet(
                domain=domain, name=f"Outlet {i % 4}",
                rating_class=ratings[i % len(ratings)],
            ))
            platform.store_article(Article(
                article_id=f"a{i}", url=f"https://{domain}/a{i}",
                outlet_domain=domain, title=f"title {i}",
                published_at=base + timedelta(days=i % 5, hours=i % 11),
                text="covid coronavirus pandemic study",
                topics=("covid19",) if i % 3 else ("politics",),
            ))
        platform.run_daily_migration()
        return platform

    def test_standing_rollups_registered_and_fresh_after_migration(self):
        platform = self._platform()
        expected = {
            ARTICLES_PER_OUTLET_ROLLUP,
            DAILY_ARTICLE_COUNTS_ROLLUP,
            topic_articles_rollup_name("covid19"),
        }
        assert set(platform.warehouse.rollups.names()) == expected
        overview = platform.status()["warehouse_rollups"]
        assert set(overview) == expected
        assert all(entry["fresh"] for entry in overview.values())

    def test_disabled_config_registers_nothing(self):
        platform = self._platform(enabled=False)
        assert platform.warehouse.rollups.names() == []

    def test_analytics_results_identical_with_and_without_rollups(self):
        with_rollups = self._platform(enabled=True)
        without = self._platform(enabled=False)
        a_on = with_rollups.warehouse_analytics()
        a_off = without.warehouse_analytics()

        assert repr(a_on.daily_article_counts()) == repr(a_off.daily_article_counts())
        assert repr(a_on.articles_per_outlet()) == repr(a_off.articles_per_outlet())
        summary_on = a_on.rating_class_summary(with_rollups.outlet_ratings, "covid19")
        summary_off = a_off.rating_class_summary(without.outlet_ratings, "covid19")
        assert repr(summary_on) == repr(summary_off)
        # Topic-filtered daily counts bypass the roll-up (it only covers the
        # unfiltered view) and must agree too.
        assert repr(a_on.daily_article_counts("covid19")) == repr(
            a_off.daily_article_counts("covid19")
        )

    def test_served_reads_touch_no_blocks(self):
        platform = self._platform()
        analytics = platform.warehouse_analytics()
        analytics.daily_article_counts()  # warm nothing — rollup state serves
        reads_before = platform.dfs.read_count
        analytics.daily_article_counts()
        analytics.articles_per_outlet()
        assert platform.dfs.read_count == reads_before

    def test_stale_state_falls_back_to_live_path(self):
        platform = self._platform()
        analytics = platform.warehouse_analytics()
        # Append behind the migration's back: the roll-up goes stale and the
        # read must reflect the *new* data via the live fallback.
        platform.warehouse.table("articles").append([{
            "article_id": "late", "url": "https://outlet-0.example.com/late",
            "outlet_domain": "outlet-0.example.com", "title": "late",
            "author": None, "published_at": datetime(2020, 2, 2, 10),
            "text": "", "html": "", "topics": ["politics"],
            "created_at": datetime(2020, 2, 2, 10),
            "ingested_at": datetime(2020, 2, 2, 10),
        }])
        counts = analytics.articles_per_outlet()
        live = platform.warehouse.table("articles").aggregate(
            {"articles": ("count", "*")}, group_by="outlet_domain"
        )
        assert counts == dict(sorted(
            (outlet, row["articles"]) for outlet, row in live.items()
        ))

    def test_standing_specs_cover_the_expected_shapes(self):
        specs = {spec.name: spec for spec in standing_rollup_specs("climate")}
        assert specs[DAILY_ARTICLE_COUNTS_ROLLUP].group_by == ("published_at",)
        assert specs[ARTICLES_PER_OUTLET_ROLLUP].group_by == ("outlet_domain",)
        topic_spec = specs[topic_articles_rollup_name("climate")]
        assert topic_spec.column_predicates is not None
        predicate = topic_spec.column_predicates["topics"]
        assert predicate(["climate", "x"]) and not predicate(["covid19"]) and not predicate(None)
