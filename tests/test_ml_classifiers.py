"""Tests for Naive Bayes, the text-classification pipeline and logistic regression."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import MultinomialNaiveBayes, TextClassifier

CLICKBAIT_TITLES = [
    "You won't believe this shocking trick",
    "Doctors hate this one weird secret",
    "The shocking truth they hide from you",
    "This insane hack will blow your mind",
    "You need to see what happens next",
    "Unbelievable secret revealed at last",
]
FACTUAL_TITLES = [
    "Study examines vaccine efficacy in adults",
    "Researchers publish climate emission data",
    "New analysis measures infection rates",
    "University reports genome sequencing results",
    "Agency releases quarterly health statistics",
    "Scientists observe distant galaxy formation",
]


class TestMultinomialNaiveBayes:
    def _fitted(self):
        X = np.array([[3, 0], [4, 1], [0, 3], [1, 4]], dtype=float)
        y = ["spam", "spam", "ham", "ham"]
        return MultinomialNaiveBayes().fit(X, y), X, y

    def test_predictions_recover_training_labels(self):
        model, X, y = self._fitted()
        assert model.predict(X) == y

    def test_probabilities_sum_to_one(self):
        model, X, _ = self._fitted()
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_negative_features_rejected(self):
        with pytest.raises(ModelError):
            MultinomialNaiveBayes().fit(np.array([[-1.0, 2.0]]), ["a"])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelError):
            MultinomialNaiveBayes().fit(np.ones((3, 2)), ["a", "b"])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            MultinomialNaiveBayes().predict(np.ones((1, 2)))

    def test_invalid_alpha(self):
        with pytest.raises(ModelError):
            MultinomialNaiveBayes(alpha=0.0)


class TestTextClassifier:
    def test_separates_clickbait_from_factual_titles(self):
        model = TextClassifier(positive_class=1)
        labels = [1] * len(CLICKBAIT_TITLES) + [0] * len(FACTUAL_TITLES)
        model.fit(CLICKBAIT_TITLES + FACTUAL_TITLES, labels)
        predictions = model.predict(CLICKBAIT_TITLES + FACTUAL_TITLES)
        accuracy = sum(1 for p, t in zip(predictions, labels) if p == t) / len(labels)
        assert accuracy >= 0.8

    def test_predict_proba_returns_positive_class_probability(self):
        model = TextClassifier(positive_class=1)
        labels = [1] * len(CLICKBAIT_TITLES) + [0] * len(FACTUAL_TITLES)
        model.fit(CLICKBAIT_TITLES + FACTUAL_TITLES, labels)
        proba = model.predict_proba(["You won't believe this shocking secret trick"])
        assert 0.5 < proba[0] <= 1.0

    def test_unknown_positive_class_raises(self):
        model = TextClassifier(positive_class="missing")
        model.fit(["a b", "c d"], ["x", "y"])
        with pytest.raises(ModelError):
            model.predict_proba(["a b"])


class TestLogisticRegression:
    def _data(self, n=120, seed=3):
        rng = np.random.default_rng(seed)
        X0 = rng.normal(loc=-1.0, scale=0.8, size=(n // 2, 2))
        X1 = rng.normal(loc=1.0, scale=0.8, size=(n // 2, 2))
        X = np.vstack([X0, X1])
        y = [0] * (n // 2) + [1] * (n // 2)
        return X, y

    def test_learns_separable_classes(self):
        X, y = self._data()
        model = LogisticRegression(n_iterations=300)
        model.fit(X, y)
        predictions = model.predict(X)
        accuracy = sum(1 for p, t in zip(predictions, y) if p == t) / len(y)
        assert accuracy >= 0.9

    def test_probabilities_are_bounded(self):
        X, y = self._data()
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_requires_two_classes(self):
        with pytest.raises(ModelError):
            LogisticRegression().fit(np.ones((3, 2)), [1, 1, 1])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.ones((1, 2)))

    def test_l2_regularisation_shrinks_weights(self):
        X, y = self._data()
        free = LogisticRegression(l2=0.0).fit(X, y)
        shrunk = LogisticRegression(l2=5.0).fit(X, y)
        assert np.linalg.norm(shrunk.weights_) < np.linalg.norm(free.weights_)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ModelError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ModelError):
            LogisticRegression(n_iterations=0)
        with pytest.raises(ModelError):
            LogisticRegression(l2=-1)
