"""Tier-1 mirror of the docs-link-check CI job: intra-repo links resolve."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", REPO_ROOT / "benchmarks" / "check_docs_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_intra_repo_markdown_links_resolve():
    checker = load_checker()
    problems = checker.broken_links(REPO_ROOT)
    assert not problems, "broken intra-repo markdown links:\n" + "\n".join(problems)


def test_checker_sees_the_core_docs():
    checker = load_checker()
    names = {path.name for path in checker.markdown_files(REPO_ROOT)}
    assert {"README.md", "ROADMAP.md", "architecture.md", "serving.md"} <= names


def test_checker_flags_a_broken_link(tmp_path):
    checker = load_checker()
    (tmp_path / "index.md").write_text(
        "see [the missing page](nowhere.md) and [a real one](real.md) "
        "and [outside](https://example.com) and [an anchor](#here)",
        encoding="utf-8",
    )
    (tmp_path / "real.md").write_text("hello", encoding="utf-8")
    problems = checker.broken_links(tmp_path)
    assert problems == ["index.md:1: nowhere.md"]
