"""Tests for repro.nlp.tokenize and sentence splitting."""

import pytest

from repro.nlp.sentences import sentence_lengths, split_sentences
from repro.nlp.tokenize import (
    count_characters,
    count_syllables,
    count_syllables_text,
    fold_token,
    is_complex_word,
    is_word,
    tokenize,
    word_tokens,
)


class TestTokenize:
    def test_empty_text(self):
        assert tokenize("") == []
        assert word_tokens("") == []

    def test_words_numbers_and_punctuation_are_separated(self):
        tokens = tokenize("Cases rose by 1,200 today!")
        assert "Cases" in tokens
        assert "1,200" in tokens
        assert "!" in tokens

    def test_hyphenated_and_apostrophe_words_stay_whole(self):
        assert "state-of-the-art" in word_tokens("A state-of-the-art method")
        assert "don't" in word_tokens("They don't agree")

    def test_word_tokens_lowercase_by_default(self):
        assert word_tokens("COVID Spreads") == ["covid", "spreads"]
        assert word_tokens("COVID Spreads", lowercase=False) == ["COVID", "Spreads"]

    def test_is_word(self):
        assert is_word("pandemic")
        assert not is_word("123")
        assert not is_word("!")

    def test_punctuation_only_text_has_no_word_tokens(self):
        for text in ("...", "!?", "--- ---", "'' ’’", "123 456", "  \t\n"):
            assert word_tokens(text) == []

    def test_unicode_words_are_tokenized(self):
        assert word_tokens("Café au Lait") == ["café", "au", "lait"]
        assert word_tokens("Übermäßige Wärme") == ["übermässige", "wärme"]
        assert word_tokens("Παλιά νέα") == ["παλιά", "νέα"]

    def test_casefolding_is_stable_for_non_ascii(self):
        # ß casefolds to "ss"; folding must be idempotent and lowercase.
        (token,) = word_tokens("Straße")
        assert token == "strasse"
        assert fold_token(token) == token
        # Cherokee casefolds *upward*; fold_token must still hit a
        # lowercase fixpoint so the planner's token == token.lower()
        # invariant holds for every emitted token.
        for token in word_tokens("ꭰꮿꮩꮈ ᎠᏯᏙᎸ"):
            assert fold_token(token) == token
            assert token == token.lower()

    def test_joiners_need_letters_on_both_sides(self):
        assert word_tokens("state- of") == ["state", "of"]
        assert word_tokens("-state") == ["state"]
        assert word_tokens("rock'n'roll") == ["rock'n'roll"]
        assert word_tokens("can’t stop") == ["can’t", "stop"]
        assert word_tokens("x-2 axis") == ["x", "axis"]


class TestSyllables:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("cat", 1),
            ("table", 2),
            ("make", 1),
            ("coronavirus", 5),
            ("readability", 5),
            ("outbreak", 2),
        ],
    )
    def test_common_words(self, word, expected):
        assert count_syllables(word) == expected

    def test_non_empty_word_has_at_least_one_syllable(self):
        assert count_syllables("rhythm") >= 1
        assert count_syllables("xyz") >= 1

    def test_empty_word(self):
        assert count_syllables("") == 0

    def test_text_level_helpers(self):
        words = ["simple", "words"]
        assert count_syllables_text(words) >= 2
        assert count_characters(words) == len("simplewords")

    def test_complex_word_threshold(self):
        assert is_complex_word("epidemiology")
        assert not is_complex_word("virus")


class TestSentences:
    def test_empty(self):
        assert split_sentences("") == []

    def test_basic_splitting(self):
        text = "The outbreak grew. Officials responded quickly! Was it enough?"
        assert len(split_sentences(text)) == 3

    def test_abbreviations_do_not_split(self):
        text = "Dr. Smith presented the data. The results were clear."
        sentences = split_sentences(text)
        assert len(sentences) == 2
        assert sentences[0].startswith("Dr. Smith")

    def test_paragraph_breaks_split(self):
        text = "First paragraph without period\n\nSecond paragraph"
        assert len(split_sentences(text)) == 2

    def test_sentence_lengths(self):
        lengths = sentence_lengths("One two three. Four five.")
        assert lengths == [3, 2]
