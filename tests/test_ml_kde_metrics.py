"""Tests for the KDE, the classification metrics and model selection."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.kde import GaussianKDE
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.ml.model_selection import cross_validate, k_fold_indices, train_test_split


class TestGaussianKDE:
    def test_density_integrates_to_about_one(self):
        rng = np.random.default_rng(0)
        kde = GaussianKDE(rng.normal(size=500))
        assert kde.integrate() == pytest.approx(1.0, abs=0.02)

    def test_mode_near_sample_mean_for_gaussian(self):
        rng = np.random.default_rng(1)
        kde = GaussianKDE(rng.normal(loc=5.0, scale=1.0, size=800))
        assert abs(kde.mode() - 5.0) < 0.5

    def test_wider_data_gives_wider_bandwidth(self):
        rng = np.random.default_rng(2)
        narrow = GaussianKDE(rng.normal(scale=0.5, size=300))
        wide = GaussianKDE(rng.normal(scale=5.0, size=300))
        assert wide.bandwidth > narrow.bandwidth

    def test_explicit_and_rule_bandwidths(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert GaussianKDE(data, bandwidth=0.7).bandwidth == pytest.approx(0.7)
        assert GaussianKDE(data, bandwidth="silverman").bandwidth < GaussianKDE(data, bandwidth="scott").bandwidth

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            GaussianKDE([])
        with pytest.raises(ModelError):
            GaussianKDE([1.0, 2.0], bandwidth=-1.0)
        with pytest.raises(ModelError):
            GaussianKDE([1.0, 2.0], bandwidth="unknown")

    def test_constant_sample_does_not_crash(self):
        kde = GaussianKDE([3.0, 3.0, 3.0])
        xs, density = kde.curve(50)
        assert np.all(np.isfinite(density))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_precision_recall_f1(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 1, 0, 1]
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_zero_division_cases(self):
        assert precision_score([0, 0], [0, 0]) == 0.0
        assert recall_score([0, 0], [1, 1]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_confusion_matrix(self):
        labels, matrix = confusion_matrix(["a", "b", "a"], ["a", "a", "a"])
        assert labels == ["a", "b"]
        assert matrix[0, 0] == 2 and matrix[1, 0] == 1

    def test_roc_auc_perfect_and_random(self):
        y = [0, 0, 1, 1]
        assert roc_auc_score(y, [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)
        assert roc_auc_score(y, [0.9, 0.8, 0.2, 0.1]) == pytest.approx(0.0)
        assert roc_auc_score(y, [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_roc_auc_requires_both_classes(self):
        with pytest.raises(ModelError):
            roc_auc_score([1, 1], [0.2, 0.4])

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            accuracy_score([1], [1, 0])


class TestModelSelection:
    def test_train_test_split_sizes_and_determinism(self):
        samples = list(range(20))
        labels = [i % 2 for i in samples]
        a = train_test_split(samples, labels, test_fraction=0.25, random_seed=1)
        b = train_test_split(samples, labels, test_fraction=0.25, random_seed=1)
        assert a == b
        train_x, test_x, train_y, test_y = a
        assert len(test_x) == 5 and len(train_x) == 15
        assert len(train_y) == 15 and len(test_y) == 5
        assert set(train_x) | set(test_x) == set(samples)

    def test_train_test_split_validation(self):
        with pytest.raises(ModelError):
            train_test_split([1], [1], test_fraction=0.5)
        with pytest.raises(ModelError):
            train_test_split([1, 2], [1], test_fraction=0.5)
        with pytest.raises(ModelError):
            train_test_split([1, 2], [0, 1], test_fraction=1.5)

    def test_k_fold_partitions_everything_once(self):
        splits = k_fold_indices(17, n_folds=4)
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(17))
        for train, test in splits:
            assert set(train.tolist()).isdisjoint(set(test.tolist()))

    def test_k_fold_validation(self):
        with pytest.raises(ModelError):
            k_fold_indices(3, n_folds=5)
        with pytest.raises(ModelError):
            k_fold_indices(10, n_folds=1)

    def test_cross_validate_runs_factory_per_fold(self):
        class MajorityModel:
            def fit(self, xs, ys):
                self.label = max(set(ys), key=ys.count)

            def predict(self, xs):
                return [self.label] * len(xs)

        samples = list(range(30))
        labels = [0] * 20 + [1] * 10
        scores = cross_validate(MajorityModel, samples, labels, accuracy_score, n_folds=3)
        assert len(scores) == 3
        assert all(0.0 <= s <= 1.0 for s in scores)
