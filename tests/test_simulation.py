"""Tests for the synthetic-data generators (outlets, corpus, social activity, scenario)."""

from datetime import datetime

import pytest

from repro._time import COVID_WINDOW_START
from repro.errors import OutletNotFound, ValidationError
from repro.models import RatingClass
from repro.simulation.corpus import ArticleGenerator
from repro.simulation.covid import CovidScenarioConfig, attention_curve, covid_share, generate_covid_scenario
from repro.simulation.outlets import DEFAULT_OUTLET_COUNT, OutletRegistry, build_default_outlets
from repro.simulation.rng import SeededRng, derive_seed
from repro.simulation.social_activity import SocialActivityGenerator
from repro.simulation.topics import TOPICS, topic, topic_keys
from repro.web.sitestore import SiteStore


class TestRng:
    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(13, "a", 1) == derive_seed(13, "a", 1)
        assert derive_seed(13, "a", 1) != derive_seed(13, "a", 2)

    def test_child_streams_are_independent_but_reproducible(self):
        a = SeededRng(13).child("outlet", 1).uniform()
        b = SeededRng(13).child("outlet", 1).uniform()
        c = SeededRng(13).child("outlet", 2).uniform()
        assert a == b
        assert a != c

    def test_sampling_helpers(self):
        rng = SeededRng(5)
        assert 1 <= rng.randint(1, 3) <= 3
        assert rng.choice(["x"]) == "x"
        assert len(rng.sample([1, 2, 3], 5)) == 3
        assert sorted(rng.shuffled([3, 1, 2])) == [1, 2, 3]
        with pytest.raises(ValueError):
            rng.choice([])


class TestTopics:
    def test_covid_topic_exists_with_keywords(self):
        spec = topic("covid19")
        assert spec.category == "health"
        assert "coronavirus" in spec.keywords

    def test_unknown_topic(self):
        with pytest.raises(ValidationError):
            topic("astrology")

    def test_topic_keys_sorted(self):
        assert topic_keys() == sorted(TOPICS)


class TestOutlets:
    def test_default_registry_has_45_outlets(self):
        registry = OutletRegistry.default()
        assert len(registry) == DEFAULT_OUTLET_COUNT
        assert len(registry.low_quality()) + len(registry.high_quality()) < DEFAULT_OUTLET_COUNT

    def test_rating_class_distribution_covers_all_classes(self):
        registry = OutletRegistry.default()
        for rating in RatingClass:
            assert registry.by_rating_class(rating), f"no outlets in class {rating}"

    def test_scores_respect_rating_class_ranges(self):
        for profile in build_default_outlets():
            if profile.rating_class.is_high_quality:
                assert profile.evidence_score > 0.6
            if profile.rating_class.is_low_quality:
                assert profile.evidence_score < 0.4

    def test_generation_is_deterministic(self):
        a = [p.domain for p in build_default_outlets(random_seed=13)]
        b = [p.domain for p in build_default_outlets(random_seed=13)]
        assert a == b

    def test_custom_outlet_count_scales_distribution(self):
        registry = OutletRegistry.default(n_outlets=10)
        assert len(registry) == 10

    def test_lookups(self):
        registry = OutletRegistry.default(n_outlets=8)
        profile = registry.profiles[0]
        assert registry.get(profile.domain) is profile
        assert registry.by_handle(profile.twitter_handle) is profile
        assert registry.rating_of(profile.domain) is profile.rating_class
        with pytest.raises(OutletNotFound):
            registry.get("unknown.example.com")

    def test_account_registry_covers_every_outlet(self):
        registry = OutletRegistry.default(n_outlets=8)
        accounts = registry.account_registry()
        assert len(accounts) == 8
        assert accounts.outlet_for(registry.profiles[0].twitter_handle) == registry.profiles[0].domain


class TestArticleGenerator:
    def _generator(self):
        registry = OutletRegistry.default(n_outlets=10, random_seed=13)
        store = SiteStore()
        return ArticleGenerator(store, registry, random_seed=13), registry, store

    def test_generated_article_registers_page_and_parses_back(self):
        generator, registry, store = self._generator()
        profile = registry.profiles[0]
        generated = generator.generate(profile, "covid19", datetime(2020, 2, 1, 10), 1)
        assert generated.url in store
        assert generated.article.title
        assert generated.article.text
        assert generated.article.outlet_domain == profile.domain
        assert 0.0 <= generated.true_quality <= 1.0

    def test_generation_is_deterministic(self):
        generator, registry, _ = self._generator()
        profile = registry.profiles[0]
        a = generator.generate(profile, "covid19", datetime(2020, 2, 1, 10), 7)
        b = generator.generate(profile, "covid19", datetime(2020, 2, 1, 10), 7)
        assert a.article.title == b.article.title
        assert a.html == b.html

    def test_quality_shapes_references_and_bylines(self):
        generator, registry, _ = self._generator()
        low = registry.low_quality()[0]
        high = registry.high_quality()[0]
        low_articles = [generator.generate(low, "covid19", datetime(2020, 2, 1, 9), i) for i in range(30)]
        high_articles = [generator.generate(high, "covid19", datetime(2020, 2, 1, 9), 1000 + i) for i in range(30)]

        low_sci = sum(a.n_scientific_links for a in low_articles)
        high_sci = sum(a.n_scientific_links for a in high_articles)
        assert high_sci > low_sci

        low_bylines = sum(1 for a in low_articles if a.article.has_byline)
        high_bylines = sum(1 for a in high_articles if a.article.has_byline)
        assert high_bylines > low_bylines


class TestSocialActivity:
    def test_low_quality_articles_attract_more_reactions_on_average(self):
        registry = OutletRegistry.default(n_outlets=10, random_seed=13)
        store = SiteStore()
        generator = ArticleGenerator(store, registry, random_seed=13)
        social = SocialActivityGenerator(random_seed=13)
        low, high = registry.low_quality()[0], registry.high_quality()[0]

        def mean_reactions(profile, offset):
            total = 0
            for i in range(25):
                generated = generator.generate(profile, "covid19", datetime(2020, 2, 2, 9), offset + i)
                _posts, reactions = social.generate(generated, profile)
                total += len(reactions)
            return total / 25

        assert mean_reactions(low, 0) > mean_reactions(high, 5000)

    def test_posts_include_the_outlet_announcement(self):
        registry = OutletRegistry.default(n_outlets=5, random_seed=13)
        store = SiteStore()
        generator = ArticleGenerator(store, registry, random_seed=13)
        social = SocialActivityGenerator(random_seed=13)
        profile = registry.profiles[0]
        generated = generator.generate(profile, "covid19", datetime(2020, 2, 2, 9), 3)
        posts, reactions = social.generate(generated, profile)
        assert posts[0].account == profile.twitter_handle
        assert all(r.post_id in {p.post_id for p in posts} for r in reactions)
        announcement = social.announce(generated, profile)
        assert announcement.account == profile.twitter_handle


class TestCovidScenario:
    def test_attention_curve_is_monotonically_increasing(self):
        config = CovidScenarioConfig()
        values = [attention_curve(day, config) for day in range(0, 60, 5)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[0] < 0.1 and values[-1] > 0.85

    def test_covid_share_separates_low_and_high_quality_late(self):
        config = CovidScenarioConfig()
        registry = OutletRegistry.default(n_outlets=10)
        low, high = registry.low_quality()[0], registry.high_quality()[0]
        assert abs(covid_share(0, low, config) - covid_share(0, high, config)) < 0.05
        assert covid_share(55, low, config) > covid_share(55, high, config) + 0.15

    def test_small_scenario_contents(self, small_scenario):
        summary = small_scenario.summary()
        assert summary["outlets"] == 6
        assert summary["articles"] > 50
        assert summary["topic_articles"] > 10
        assert summary["posts"] >= summary["articles"]  # every article is announced
        assert summary["reactions"] > 0
        # Every generated article page is registered on the synthetic web.
        assert len(small_scenario.site_store) == summary["articles"]

    def test_scenario_event_views(self, small_scenario):
        postings = list(small_scenario.posting_events())
        reactions = list(small_scenario.reaction_events())
        assert len(postings) == len(small_scenario.posts)
        assert len(reactions) == len(small_scenario.reactions)
        # Events are time ordered.
        times = [value["created_at"] for _key, value in postings]
        assert times == sorted(times)

    def test_lookup_helpers(self, small_scenario):
        generated = small_scenario.articles[0]
        assert small_scenario.article_by_url(generated.url) is generated
        assert small_scenario.article_by_url("https://nowhere.example.com/x") is None
        assert generated in small_scenario.articles_of_outlet(generated.article.outlet_domain)
        assert small_scenario.true_quality_by_article_id()[generated.article.article_id] == generated.true_quality

    def test_daily_counts_cover_window(self, small_scenario):
        counts = small_scenario.daily_article_counts()
        assert len(counts) == 6
        first_day = min(day for days in counts.values() for day in days)
        assert first_day >= COVID_WINDOW_START.date()
