"""End-to-end integration tests: scenario → streaming → storage → analytics →
indicators → API, plus the paper's qualitative claims on a fresh small scenario."""

from datetime import datetime, timedelta

import pytest

from repro import PlatformConfig, SciLensPlatform, build_gateway
from repro.experts.reviewers import ReviewerPool
from repro.simulation import CovidScenarioConfig, generate_covid_scenario


@pytest.fixture(scope="module")
def fresh_platform():
    """A platform built from its own scenario (independent of the shared fixture)."""
    scenario = generate_covid_scenario(CovidScenarioConfig.small(n_outlets=8, n_days=24, random_seed=29))
    platform = SciLensPlatform(
        config=PlatformConfig(),
        site_store=scenario.site_store,
        account_registry=scenario.outlets.account_registry(),
    )
    platform.register_outlets(scenario.outlets.outlets())
    platform.ingest_posting_events(scenario.posting_events())
    platform.ingest_reaction_events(scenario.reaction_events())
    platform.process_stream()
    platform.assign_topics()
    return scenario, platform


class TestEndToEnd:
    def test_streaming_ingestion_is_lossless(self, fresh_platform):
        scenario, platform = fresh_platform
        stats = platform.extraction.stats.as_dict()
        assert stats["postings_seen"] == len(scenario.posts)
        assert stats["reactions_seen"] == len(scenario.reactions)
        assert stats["scrape_failures"] == 0
        assert platform.article_count() == len(scenario.articles)

    def test_full_analytics_cycle(self, fresh_platform):
        _scenario, platform = fresh_platform
        migration = platform.run_daily_migration()
        assert migration.total_rows > 0
        trained = platform.train_models()
        assert trained["n_articles"] > 0
        status = platform.status()
        assert status["warehouse_rows"] == migration.total_rows
        assert status["jobs_success_rate"] == 1.0

    def test_figure4_shape_low_quality_outlets_ramp_up(self, fresh_platform):
        scenario, platform = fresh_platform
        insights = platform.topic_insights(
            "covid19", window_start=scenario.window_start, window_end=scenario.window_end
        )
        activity = insights.newsroom_activity
        low_first = activity.mean_share(True, first_half=True)
        low_second = activity.mean_share(True, first_half=False)
        high_second = activity.mean_share(False, first_half=False)
        assert low_second > low_first          # the topic takes off
        assert low_second > high_second        # and low-quality outlets chase it harder

    def test_figure5_shapes_engagement_and_evidence(self, fresh_platform):
        scenario, platform = fresh_platform
        insights = platform.topic_insights(
            "covid19", window_start=scenario.window_start, window_end=scenario.window_end
        )
        engagement = insights.social_engagement.summary()
        evidence = insights.evidence_seeking.summary()
        assert engagement["low_mean"] > engagement["high_mean"]
        assert engagement["low_std"] > engagement["high_std"]
        assert evidence["high_mean"] > evidence["low_mean"] + 0.1

    def test_indicator_scores_separate_outlet_quality(self, fresh_platform):
        scenario, platform = fresh_platform
        covid = scenario.topic_articles()
        low_urls = [g.url for g in covid if g.article.outlet_domain in
                    {p.domain for p in scenario.outlets.low_quality()}][:10]
        high_urls = [g.url for g in covid if g.article.outlet_domain in
                     {p.domain for p in scenario.outlets.high_quality()}][:10]
        if not low_urls or not high_urls:
            pytest.skip("scenario too small to have both groups")

        def mean_score(urls):
            scores = []
            for url in urls:
                article = platform.get_article_by_url(url)
                scores.append(platform.evaluate_article(article.article_id).profile.automated_score)
            return sum(scores) / len(scores)

        assert mean_score(high_urls) > mean_score(low_urls)

    def test_expert_reviews_through_api_affect_assessment(self, fresh_platform):
        scenario, platform = fresh_platform
        gateway = build_gateway(platform)
        article = platform.get_article_by_url(scenario.topic_articles()[0].url)

        baseline = gateway.handle("indicators.evaluate", {"article_id": article.article_id}).payload["final_score"]
        pool = ReviewerPool(n_reviewers=3, random_seed=3)
        for review in pool.review_article(article.article_id, 0.95, datetime(2020, 3, 10)):
            gateway.handle(
                "reviews.submit",
                {
                    "article_id": review.article_id,
                    "reviewer_id": review.reviewer_id,
                    "scores": review.scores,
                    "created_at": review.created_at.isoformat(),
                    "reviewer_weight": review.reviewer_weight,
                },
            )
        with_reviews = gateway.handle("indicators.evaluate", {"article_id": article.article_id}).payload
        assert with_reviews["expert"] is not None
        assert with_reviews["final_score"] != pytest.approx(baseline) or with_reviews["expert"]["expert_n_reviews"] >= 3

    def test_wal_durability_of_the_operational_store(self, tmp_path):
        from repro.config import StorageConfig

        scenario = generate_covid_scenario(CovidScenarioConfig.small(n_outlets=3, n_days=6, random_seed=5))
        config = PlatformConfig(storage=StorageConfig(data_dir=tmp_path))
        platform = SciLensPlatform(config=config, site_store=scenario.site_store,
                                   account_registry=scenario.outlets.account_registry())
        platform.register_outlets(scenario.outlets.outlets())
        platform.ingest_posting_events(scenario.posting_events())
        platform.process_stream()
        stored = platform.article_count()
        assert stored > 0

        # A new platform instance over the same data directory replays the WAL.
        reopened = SciLensPlatform(config=config, site_store=scenario.site_store,
                                   account_registry=scenario.outlets.account_registry())
        assert reopened.article_count() == stored

    def test_daily_incremental_operation(self):
        """Simulate day-by-day operation: ingest one day at a time and migrate daily."""
        scenario = generate_covid_scenario(CovidScenarioConfig.small(n_outlets=4, n_days=8, random_seed=11))
        platform = SciLensPlatform(site_store=scenario.site_store,
                                   account_registry=scenario.outlets.account_registry())
        platform.register_outlets(scenario.outlets.outlets())

        postings = sorted(scenario.posting_events(), key=lambda kv: kv[1]["created_at"])
        total_migrated = 0
        for day in range(8):
            day_start = scenario.window_start + timedelta(days=day)
            day_end = day_start + timedelta(days=1)
            events = [
                (key, value) for key, value in postings
                if day_start.isoformat() <= value["created_at"] < day_end.isoformat()
            ]
            platform.ingest_posting_events(events)
            platform.process_stream()
            report = platform.run_daily_migration(now=day_end)
            total_migrated += report.total_rows

        # The warehouse mirrors the operational store exactly: day one is a
        # bootstrap copy, later days arrive as CDC deltas deduplicated by
        # primary key/LSN — so re-upserted rows count as synced work without
        # inflating the warehouse.
        status = platform.status()
        operational_rows = (
            status["articles"] + status["posts"] + status["reactions"] + status["reviews"]
        )
        assert platform.warehouse.total_rows() == operational_rows
        assert total_migrated >= operational_rows
        assert status["cdc"]["enabled"] and status["cdc"]["pending_records"] == 0
        assert platform.article_count() <= platform.warehouse.total_rows()
