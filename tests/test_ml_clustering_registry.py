"""Tests for the hierarchical topic model and the model registry."""

from datetime import datetime

import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.clustering import HierarchicalTopicModel
from repro.ml.registry import ModelRegistry

HEALTH_DOCS = [
    "coronavirus outbreak spreads with new infection cases and quarantine measures",
    "vaccine trial reports immunity results for coronavirus patients",
    "pandemic lockdown slows virus transmission and hospitalization rates",
    "flu season vaccination campaign reduces influenza infection",
    "epidemiologists model the outbreak transmission and incubation period",
    "hospital reports respiratory symptoms and testing shortages during the epidemic",
]
SPACE_DOCS = [
    "telescope observes distant galaxy cluster and asteroid orbits",
    "spacecraft launch delivers satellite into orbit around the planet",
    "astronomers map the galaxy with a new telescope survey",
    "rover mission explores the planet surface and collects samples",
    "asteroid flyby recorded by the orbiting spacecraft camera",
    "satellite constellation launch expands orbital coverage",
]


class TestHierarchicalTopicModel:
    def _fitted(self):
        model = HierarchicalTopicModel(depth=1, branching=2, min_cluster_size=2, random_seed=7)
        model.fit(HEALTH_DOCS + SPACE_DOCS)
        return model

    def test_builds_children_under_root(self):
        model = self._fitted()
        assert model.root_ is not None
        assert len(model.root_.children) >= 2

    def test_assignment_probabilities_sum_to_parent_mass(self):
        model = self._fitted()
        assignment = model.assign(HEALTH_DOCS[:1])[0]
        child_mass = sum(
            probability
            for topic_id, probability in assignment.probabilities.items()
            if topic_id.count(".") == 1
        )
        assert child_mass == pytest.approx(assignment.probabilities["root"], abs=1e-6)

    def test_similar_documents_share_their_top_topic(self):
        model = self._fitted()
        assignments = model.assign(HEALTH_DOCS + SPACE_DOCS)
        health_topics = {a.top_topic() for a in assignments[: len(HEALTH_DOCS)]}
        space_topics = {a.top_topic() for a in assignments[len(HEALTH_DOCS):]}
        # The dominant topic of each group should not be identical across groups.
        assert health_topics != space_topics

    def test_documents_can_receive_multiple_topics(self):
        model = self._fitted()
        assignments = model.assign(HEALTH_DOCS)
        assert all(len(a.assigned) >= 1 for a in assignments)

    def test_labels_are_derived_from_vocabulary(self):
        model = self._fitted()
        labels = model.topic_labels()
        assert "root" in labels
        assert all(isinstance(label, str) and label for label in labels.values())

    def test_unfitted_usage_raises(self):
        model = HierarchicalTopicModel()
        with pytest.raises(NotFittedError):
            model.assign(["text"])
        with pytest.raises(NotFittedError):
            model.nodes()

    def test_empty_corpus_rejected(self):
        with pytest.raises(ModelError):
            HierarchicalTopicModel().fit([])

    def test_invalid_hyperparameters(self):
        with pytest.raises(ModelError):
            HierarchicalTopicModel(depth=0)
        with pytest.raises(ModelError):
            HierarchicalTopicModel(branching=1)
        with pytest.raises(ModelError):
            HierarchicalTopicModel(min_probability=2.0)


class TestModelRegistry:
    def test_register_and_get_latest(self):
        registry = ModelRegistry()
        registry.register("clickbait", {"v": 1})
        registry.register("clickbait", {"v": 2})
        assert registry.latest_version("clickbait") == 2
        assert registry.get("clickbait") == {"v": 2}
        assert registry.get("clickbait", version=1) == {"v": 1}

    def test_records_track_metrics_and_history(self):
        registry = ModelRegistry()
        registry.register("m", object(), trained_at=datetime(2020, 3, 1), metrics={"acc": 0.9})
        record = registry.record("m")
        assert record.version == 1
        assert record.metrics["acc"] == 0.9
        assert len(registry.history("m")) == 1

    def test_unknown_model_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ModelError):
            registry.get("missing")
        with pytest.raises(ModelError):
            registry.latest_version("missing")
        with pytest.raises(ModelError):
            registry.history("missing")

    def test_persistence_roundtrip(self, tmp_path):
        registry = ModelRegistry(directory=tmp_path)
        registry.register("numbers", [1, 2, 3])
        fresh = ModelRegistry(directory=tmp_path)
        assert fresh.load_from_disk("numbers", 1) == [1, 2, 3]

    def test_load_from_disk_requires_directory(self):
        with pytest.raises(ModelError):
            ModelRegistry().load_from_disk("m", 1)

    def test_names_listing(self):
        registry = ModelRegistry()
        registry.register("b", 1)
        registry.register("a", 2)
        assert registry.names() == ["a", "b"]
