"""Sanity tests of the top-level public namespace."""

import repro


def test_version_is_exposed():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name!r}"


def test_key_entry_points_are_classes_or_callables():
    assert callable(repro.SciLensPlatform)
    assert callable(repro.IndicatorEngine)
    assert callable(repro.generate_covid_scenario)
    assert callable(repro.build_gateway)
    assert callable(repro.fuse_scores)


def test_core_reexports_match_shared_models():
    from repro.core import models as core_models
    from repro import models as shared_models

    assert core_models.Article is shared_models.Article
    assert core_models.RatingClass is shared_models.RatingClass
    assert core_models.ExpertReview is shared_models.ExpertReview
