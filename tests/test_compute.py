"""Tests for the batch-compute substrate (datasets, executor, shuffle, jobs)."""

import pytest

from repro.compute.dataset import Dataset
from repro.compute.executor import LocalExecutor
from repro.compute.jobs import JobTracker
from repro.compute.shuffle import hash_partition, merge_partitions
from repro.errors import ComputeError


class TestDataset:
    def _numbers(self, n=20, partitions=4):
        return Dataset.from_iterable(range(n), n_partitions=partitions)

    def test_collect_and_count(self):
        ds = self._numbers()
        assert sorted(ds.collect()) == list(range(20))
        assert ds.count() == 20

    def test_map_filter_flat_map(self):
        ds = self._numbers(10)
        assert sorted(ds.map(lambda x: x * 2).collect()) == [x * 2 for x in range(10)]
        assert ds.filter(lambda x: x % 2 == 0).count() == 5
        assert ds.flat_map(lambda x: [x, x]).count() == 20

    def test_map_partitions(self):
        ds = self._numbers(8, partitions=2)
        sums = ds.map_partitions(lambda part: [sum(part)]).collect()
        assert sum(sums) == sum(range(8))
        assert len(sums) == 2

    def test_reduce_by_key_and_count_by_key(self):
        ds = self._numbers(10).key_by(lambda x: "even" if x % 2 == 0 else "odd")
        totals = dict(ds.reduce_by_key(lambda a, b: a + b).collect())
        assert totals == {"even": 20, "odd": 25}
        counts = ds.count_by_key()
        assert counts == {"even": 5, "odd": 5}

    def test_group_by_key(self):
        ds = Dataset.from_iterable(["a", "bb", "cc", "d"], n_partitions=2)
        groups = dict(ds.key_by(len).group_by_key().collect())
        assert sorted(groups[1]) == ["a", "d"]
        assert sorted(groups[2]) == ["bb", "cc"]

    def test_join(self):
        left = Dataset.from_iterable([("a", 1), ("b", 2)], n_partitions=2)
        right = Dataset.from_iterable([("a", "x"), ("a", "y"), ("c", "z")], n_partitions=2)
        joined = sorted(left.join(right).collect())
        assert joined == [("a", (1, "x")), ("a", (1, "y"))]

    def test_keyed_ops_require_pairs(self):
        with pytest.raises(ComputeError):
            self._numbers(4).reduce_by_key(lambda a, b: a + b).collect()

    def test_union_distinct_repartition(self):
        a = Dataset.from_iterable([1, 2, 3], n_partitions=2)
        b = Dataset.from_iterable([3, 4], n_partitions=1)
        union = a.union(b)
        assert sorted(union.collect()) == [1, 2, 3, 3, 4]
        assert sorted(union.distinct().collect()) == [1, 2, 3, 4]
        assert union.repartition(2).n_partitions == 2
        assert sorted(union.repartition(2).collect()) == [1, 2, 3, 3, 4]

    def test_take_first_reduce(self):
        ds = self._numbers(10)
        assert len(ds.take(3)) == 3
        assert isinstance(ds.first(), int)
        assert ds.reduce(lambda a, b: a + b) == 45
        with pytest.raises(ComputeError):
            Dataset.from_iterable([], n_partitions=1).first()
        with pytest.raises(ComputeError):
            Dataset.from_iterable([], n_partitions=1).reduce(lambda a, b: a + b)

    def test_lineage_explain(self):
        ds = self._numbers().map(lambda x: x).filter(lambda x: True)
        assert ds.explain() == "from_iterable -> map -> filter"

    def test_cache_materialises_once(self):
        calls = {"n": 0}

        def counting(x):
            calls["n"] += 1
            return x

        ds = self._numbers(10).map(counting).cache()
        ds.collect()
        ds.collect()
        assert calls["n"] == 10  # second collect served from cache

    def test_executor_metrics_accumulate(self):
        executor = LocalExecutor(max_workers=2)
        ds = Dataset.from_iterable(range(10), n_partitions=2, executor=executor)
        ds.map(lambda x: x + 1).collect()
        assert executor.metrics.tasks_run >= 1
        assert executor.metrics.partitions_processed >= 2

    def test_sequential_executor(self):
        executor = LocalExecutor(max_workers=1)
        ds = Dataset.from_iterable(range(5), n_partitions=3, executor=executor)
        assert sorted(ds.map(lambda x: x).collect()) == list(range(5))

    def test_executor_reuses_one_thread_pool(self):
        executor = LocalExecutor(max_workers=2)
        executor.run([[1], [2]], lambda part: part)
        pool = executor._pool
        assert pool is not None
        executor.run([[3], [4]], lambda part: part)
        assert executor._pool is pool  # no per-stage construction/teardown
        executor.shutdown()
        assert executor._pool is None
        # The pool is recreated transparently after a shutdown.
        assert executor.run([[5], [6]], lambda part: part) == [[5], [6]]

    def test_executor_context_manager_shuts_down(self):
        with LocalExecutor(max_workers=2) as executor:
            executor.run([[1], [2]], lambda part: part)
            assert executor._pool is not None
        assert executor._pool is None


class TestShuffle:
    def test_same_key_lands_in_same_partition(self):
        records = [("a", 1), ("a", 2), ("b", 3), ("c", 4)]
        partitions = hash_partition(records, 3)
        location = {}
        for index, partition in enumerate(partitions):
            for key, _value in partition:
                location.setdefault(key, set()).add(index)
        assert all(len(indexes) == 1 for indexes in location.values())
        assert sorted(merge_partitions(partitions)) == sorted(records)

    def test_invalid_partition_count(self):
        with pytest.raises(ComputeError):
            hash_partition([("a", 1)], 0)

    def test_equal_numeric_keys_share_a_partition(self):
        # 1 == 1.0 == True in Python; they must co-partition or the keyed
        # transformations (reduce_by_key/group_by_key/join) emit duplicates.
        records = [(1, "int"), (1.0, "float"), (True, "bool"), (0, "zero"), (0.0, "fzero"), (False, "f")]
        for n_partitions in (2, 3, 5, 7):
            partitions = hash_partition(records, n_partitions)
            location = {}
            for index, partition in enumerate(partitions):
                for key, _value in partition:
                    location.setdefault(key, set()).add(index)
            # dict key equality already collapses 1/1.0/True: one entry each
            assert all(len(indexes) == 1 for indexes in location.values())

    def test_equal_tuple_keys_share_a_partition(self):
        records = [((1, 2.0), "a"), ((1.0, 2), "b")]
        partitions = hash_partition(records, 5)
        non_empty = [p for p in partitions if p]
        assert len(non_empty) == 1 and len(non_empty[0]) == 2

    def test_distinct_types_stay_distinct(self):
        # "1" (a string) must not collide with the number 1 by canonicalisation.
        from repro.compute.shuffle import _stable_hash

        assert _stable_hash("1") != _stable_hash(1)
        assert _stable_hash(1) == _stable_hash(1.0) == _stable_hash(True)

    def test_reduce_by_key_merges_mixed_numeric_keys(self):
        ds = Dataset.from_iterable([(1, 10), (1.0, 5), (True, 1)], n_partitions=3)
        reduced = ds.reduce_by_key(lambda a, b: a + b).collect()
        assert len(reduced) == 1 and reduced[0][1] == 16


class TestJobTracker:
    def test_successful_job_records_result(self):
        tracker = JobTracker()
        tracker.register("add", lambda a, b: a + b)
        result = tracker.run("add", 2, 3)
        assert result.succeeded and result.result == 5
        assert tracker.last_result("add").result == 5
        assert tracker.success_rate() == 1.0

    def test_failing_job_is_captured_not_raised(self):
        tracker = JobTracker()
        tracker.register("boom", lambda: 1 / 0)
        result = tracker.run("boom")
        assert not result.succeeded
        assert "ZeroDivisionError" in result.error
        assert tracker.success_rate("boom") == 0.0

    def test_unknown_job(self):
        with pytest.raises(ComputeError):
            JobTracker().run("missing")

    def test_job_names_listing(self):
        tracker = JobTracker()
        tracker.register("b", lambda: None)
        tracker.register("a", lambda: None)
        assert tracker.job_names() == ["a", "b"]
        assert tracker.last_result("a") is None
