"""Tests for score fusion with expert reviews and the evaluation pipeline."""

from datetime import datetime, timedelta

import pytest

from repro.config import IndicatorConfig
from repro.core.indicators.aggregate import IndicatorEngine
from repro.core.pipeline import ArticleEvaluationPipeline
from repro.core.scoring import fuse_scores
from repro.errors import ScrapingError
from repro.experts.aggregation import ReviewAggregator
from repro.experts.reviewers import ReviewerPool
from repro.models import ExpertReview, RatingClass
from repro.web.scraper import ArticleScraper
from repro.web.sitestore import SiteStore

NOW = datetime(2020, 3, 1, 10, 0)


def expert_review(article_id, quality, reviewer="e1", created_at=NOW):
    likert = 1 + round(quality * 4)
    return ExpertReview(
        review_id=f"rev-{article_id}-{reviewer}",
        article_id=article_id,
        reviewer_id=reviewer,
        created_at=created_at,
        scores={
            "factual_accuracy": likert,
            "sources_quality": likert,
            "clickbaitness": 6 - likert,
        },
        comment="Strong sourcing." if quality > 0.5 else "Weak sourcing.",
    )


class TestFuseScores:
    def test_without_reviews_the_automated_score_stands(self, sample_article, sample_posts, sample_reactions):
        profile = IndicatorEngine().profile(sample_article, sample_posts, sample_reactions)
        assert fuse_scores(profile, None) == pytest.approx(profile.automated_score)

    def test_expert_reviews_pull_the_score_towards_their_consensus(
        self, sample_article, sample_posts, sample_reactions
    ):
        profile = IndicatorEngine().profile(sample_article, sample_posts, sample_reactions)
        aggregator = ReviewAggregator()
        good = aggregator.summarize(sample_article.article_id, [expert_review(sample_article.article_id, 1.0)], as_of=NOW)
        bad = aggregator.summarize(sample_article.article_id, [expert_review(sample_article.article_id, 0.0)], as_of=NOW)
        fused_good = fuse_scores(profile, good)
        fused_bad = fuse_scores(profile, bad)
        assert fused_good > profile.automated_score - 1e-9 or fused_good > fused_bad
        assert fused_good > fused_bad

    def test_expert_weight_controls_the_pull(self, sample_article, sample_posts, sample_reactions):
        profile = IndicatorEngine().profile(sample_article, sample_posts, sample_reactions)
        summary = ReviewAggregator().summarize(
            sample_article.article_id, [expert_review(sample_article.article_id, 1.0)], as_of=NOW
        )
        light = fuse_scores(profile, summary, IndicatorConfig(expert_weight=0.5))
        heavy = fuse_scores(profile, summary, IndicatorConfig(expert_weight=10.0))
        assert abs(heavy - summary.overall_quality) < abs(light - summary.overall_quality)


class TestEvaluationPipeline:
    def test_evaluate_article_produces_full_assessment(self, sample_article, sample_posts, sample_reactions):
        pipeline = ArticleEvaluationPipeline(
            outlet_ratings={"dailyscience.example.com": RatingClass.HIGH}
        )
        pipeline.add_review(expert_review(sample_article.article_id, 0.9))
        assessment = pipeline.evaluate_article(sample_article, sample_posts, sample_reactions, as_of=NOW)

        assert assessment.article_id == sample_article.article_id
        assert assessment.has_expert_reviews
        assert assessment.outlet_rating is RatingClass.HIGH
        assert 0.0 <= assessment.final_score <= 1.0
        assert assessment.expert_comments == ("Strong sourcing.",)

        payload = assessment.to_payload()
        assert payload["final_rating"] in {r.value for r in RatingClass}
        assert payload["expert"]["expert_n_reviews"] == 1.0
        assert "indicators" in payload and "family_scores" in payload

    def test_only_latest_review_per_reviewer_counts(self, sample_article):
        pipeline = ArticleEvaluationPipeline()
        pipeline.add_review(expert_review(sample_article.article_id, 0.0, created_at=NOW - timedelta(days=2)))
        pipeline.add_review(
            ExpertReview(
                review_id="rev-revised",
                article_id=sample_article.article_id,
                reviewer_id="e1",
                created_at=NOW,
                scores={"factual_accuracy": 5, "sources_quality": 5, "clickbaitness": 1},
            )
        )
        assessment = pipeline.evaluate_article(sample_article, as_of=NOW)
        assert assessment.expert_summary.n_reviews == 1
        assert assessment.expert_summary.overall_quality > 0.9

    def test_evaluate_url_scrapes_arbitrary_articles(self):
        store = SiteStore()
        url = "https://anysite.example.net/2020/03/01/arbitrary"
        store.register(url, (
            "<html><head><title>Arbitrary story about the outbreak</title></head>"
            "<body><p>Plain coverage with <a href=\"https://cdc.gov/data\">official data</a>.</p></body></html>"
        ))
        pipeline = ArticleEvaluationPipeline(scraper=ArticleScraper(store))
        assessment = pipeline.evaluate_url(url)
        assert assessment.title == "Arbitrary story about the outbreak"
        assert assessment.profile.context.scientific_references == 1
        assert not assessment.has_expert_reviews

    def test_evaluate_url_without_scraper_raises(self, sample_article):
        pipeline = ArticleEvaluationPipeline(scraper=None)
        with pytest.raises(ScrapingError):
            pipeline.evaluate_url("https://example.com/x")

    def test_simulated_reviewer_pool_integrates_with_pipeline(self, sample_article):
        pipeline = ArticleEvaluationPipeline()
        for review in ReviewerPool(n_reviewers=3, random_seed=5).review_article(
            sample_article.article_id, 0.85, NOW
        ):
            pipeline.add_review(review)
        assessment = pipeline.evaluate_article(sample_article, as_of=NOW)
        assert assessment.expert_summary.n_reviews == 3
        assert assessment.final_score > 0.4
